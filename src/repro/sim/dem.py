"""Detector-error-model (DEM) extraction from compiled hardware circuits.

Walks one compiled :class:`~repro.hardware.circuit.HardwareCircuit` *once*,
enumerating every Pauli fault a :class:`~repro.sim.noise.NoiseModel` could
inject (the exact channel structure of
:meth:`NoiseModel.apply_operation_noise`: depolarizing terms after gates,
mis-preparation flips, classical readout flips, and duration-derived
dephasing including idle gaps), and conjugates each fault through the
remaining Clifford schedule as a bit-packed Pauli frame — one bit lane per
fault site, all lanes propagated together.  A fault's observable effect is
the set of measurement labels whose outcomes it flips; projected onto a set
of *detectors* (label sets whose XOR is deterministic in the noiseless
circuit) and *observables* (deterministic logical readout parities), this
yields a Stim-style :class:`DetectorErrorModel`: deduplicated error
mechanisms with probabilities, detector footprints, and observable masks.

The DEM is the input to the tableau-free
:class:`~repro.sim.frame.FrameSampler`, which samples detection events and
observable flips for whole batches as bit-packed XORs over sampled
mechanisms — orders of magnitude faster than driving the packed tableau
per shot.

Exactness: Pauli frames commute through Clifford gates up to phase, so a
mechanism's detector footprint and observable flip are *exact* — every
single-fault prediction is verified against explicit Pauli injection into
the packed-tableau engine in ``tests/test_dem_equivalence.py``.  Two
standard first-order approximations relate DEM *sampling* to the tableau
noise channels: the three (fifteen) mutually-exclusive outcomes of a
depolarizing channel become independent mechanisms, and mechanisms with
identical footprints are XOR-combined (``p = p1(1-p2) + p2(1-p1)``); both
differ from the exclusive channel only at O(p^2).

Fault-site enumeration depends only on the noise model's *structure* (which
rates are nonzero — see :func:`dem_structure_key`), never on the rate
values, so callers sweeping a rate knob can extract the
:class:`FaultTable` once and rebuild cheap DEMs per parameter set via
:func:`build_dem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.model import SINGLE_QUBIT_GATES
from repro.sim.gates import NON_CLIFFORD_GATES
from repro.sim.interpreter import (
    apply_load,
    apply_move,
    init_run_state,
    resolve_qubits,
)
from repro.sim.noise import IdleClock, NoiseModel, NoiseParams
from repro.sim.packed import unpack_bits

__all__ = [
    "DemExtractionError",
    "FaultSite",
    "FaultTable",
    "DetectorErrorModel",
    "PeriodicTemplate",
    "dem_structure_key",
    "enumerate_fault_sites",
    "extract_fault_table",
    "make_periodic_template",
    "build_dem",
    "extract_dem",
    "visit_counts",
    "reset_visit_counts",
]

# ------------------------------------------------------------ visit counting
# Every instruction-stream walk bumps these counters by the number of rows it
# visits.  The periodic-extraction regression tests use them to prove the
# fast path touches O(prologue + template + epilogue) instructions however
# many rounds the target circuit replays (the tiling stage is pure array
# arithmetic and never walks the stream).
_VISIT_COUNTS = {"enumerate": 0, "propagate": 0}


def visit_counts() -> dict[str, int]:
    """Instructions visited by the walk loops since the last reset."""
    return dict(_VISIT_COUNTS)


def reset_visit_counts() -> None:
    """Zero the instruction-visit counters (test instrumentation)."""
    for key in _VISIT_COUNTS:
        _VISIT_COUNTS[key] = 0


class DemExtractionError(RuntimeError):
    """The circuit cannot be folded into a detector error model.

    Raised for non-Clifford schedules (quasi-probability T substitutes are
    per-shot random, so no fixed fault footprint exists) and unknown
    instructions.  Callers that want graceful degradation catch this and
    fall back to the packed-tableau engine.
    """


#: The 15 non-identity two-qubit Pauli terms of a two-qubit depolarizing
#: channel, as (letter on a, letter on b) with "I" meaning no action —
#: the same k -> (k >> 2, k & 3) decoding as NoiseModel._depolarize_2q.
_TWO_QUBIT_PAULIS: tuple[tuple[str, str], ...] = tuple(
    ("IXYZ"[k >> 2], "IXYZ"[k & 3]) for k in range(1, 16)
)

# Pauli-frame conjugation rules for the native Clifford gate set (signs are
# irrelevant to detector footprints, so only the x/z bit flow matters).
_FRAME_PHASE = frozenset({"Z_pi/4", "Z_-pi/4"})  # X -> +/-Y: z ^= x
_FRAME_SQRT_X = frozenset({"X_pi/4", "X_-pi/4"})  # Z -> +/-Y: x ^= z
_FRAME_SWAP = frozenset({"Y_pi/4", "Y_-pi/4"})  # X <-> +/-Z: swap x, z
_FRAME_PAULI = frozenset({"X_pi/2", "Y_pi/2", "Z_pi/2"})  # commute up to phase


@dataclass(frozen=True)
class FaultSite:
    """One potential fault location in the compiled instruction stream.

    ``index`` addresses ``circuit.sorted_instructions()``; ``when`` is
    ``"before"`` (idle-gap dephasing), ``"after"`` (post-operation
    channels), or ``"record"`` (classical readout flip on ``label``).
    ``pauli`` lists the injected Pauli as ``(tableau qubit, letter)`` pairs.
    ``kind`` selects the probability formula of :meth:`probability`;
    ``duration_us`` drives the dephasing kinds.
    """

    index: int
    when: str
    kind: str  # "gate1" | "gate2" | "prep" | "dephase" | "idle" | "readout"
    pauli: tuple[tuple[int, str], ...] = ()
    label: str | None = None
    duration_us: float = 0.0

    def probability(self, params: NoiseParams) -> float:
        """This site's firing probability under a parameter set.

        Mirrors :class:`~repro.sim.noise.NoiseModel` exactly: each
        depolarizing term carries ``p/3`` (``p/15`` for two-qubit), and the
        dephasing kinds use the duration formula of
        :meth:`NoiseModel.dephasing_probability`.
        """
        if self.kind == "gate1":
            return params.p1 / 3.0
        if self.kind == "gate2":
            return params.p2 / 15.0
        if self.kind == "prep":
            return params.p_prep
        if self.kind == "readout":
            return params.p_meas
        if self.kind in ("dephase", "idle"):
            if params.t2_us is None or self.duration_us <= 0:
                return 0.0
            return -0.5 * float(np.expm1(-self.duration_us / params.t2_us))
        raise ValueError(f"unknown fault kind {self.kind!r}")


#: Small-integer codes for :attr:`FaultSite.kind`, the vectorized-probability
#: axis of :func:`build_dem` (see :meth:`FaultTable.site_columns`).
_KIND_CODE = {"gate1": 0, "gate2": 1, "prep": 2, "readout": 3, "dephase": 4, "idle": 5}


def dem_structure_key(params: NoiseParams) -> tuple[bool, bool, bool, bool, bool]:
    """Which channels of a parameter set can fire at all.

    Fault-site enumeration and frame propagation depend only on this key —
    two models with the same key share a :class:`FaultTable` and differ
    only in the per-site probabilities of :func:`build_dem`.
    """
    return (
        params.p1 > 0,
        params.p2 > 0,
        params.p_prep > 0,
        params.p_meas > 0,
        params.t2_us is not None,
    )


def enumerate_fault_sites(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
    *,
    _gap_preds: list[int] | None = None,
) -> list[FaultSite]:
    """Every fault location the noise model can populate, in walk order.

    Replays the occupancy evolution of :class:`~repro.sim.batch.BatchRunner`
    (Load/Move bookkeeping, idle-gap tracking) without touching any quantum
    state, appending one :class:`FaultSite` per Pauli term of every channel
    whose rate is nonzero.

    ``_gap_preds`` (internal) collects, for each emitted ``"idle"`` site in
    order, the sorted-stream row whose end time the gap was measured against
    (``-1`` when the qubit had never been busy) — the provenance the
    periodic extractor needs to recompute idle durations at tiled offsets.
    """
    occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
    tracks_idle = params.t2_us is not None
    idle = IdleClock(n_qubits, track_rows=_gap_preds is not None) if tracks_idle else None
    sites: list[FaultSite] = []

    cols = circuit.sorted_columns()
    _VISIT_COUNTS["enumerate"] += cols.n
    names, qsites, labels = cols.names, cols.sites, cols.labels
    starts = cols.t.tolist()
    ends = cols.t_end.tolist()
    durations = cols.duration.tolist()
    for idx in range(cols.n):
        name = names[idx]
        qubits = resolve_qubits(name, qsites[idx], occupancy, ion_index)

        if idle is not None:
            for q in qubits:
                gap = idle.gap_before(q, starts[idx])
                if gap > 0:
                    if _gap_preds is not None:
                        _gap_preds.append(idle.last_row[q])
                    sites.append(
                        FaultSite(idx, "before", "idle", ((q, "Z"),), duration_us=float(gap))
                    )

        if name == "Load":
            apply_load(qsites[idx][0], occupancy, ion_index, n_qubits)
        elif name == "Move":
            apply_move(qsites[idx][0], qsites[idx][1], occupancy)

        if not qubits:
            continue

        if name in SINGLE_QUBIT_GATES:
            if params.p1 > 0:
                for letter in "XYZ":
                    sites.append(FaultSite(idx, "after", "gate1", ((qubits[0], letter),)))
        elif name == "ZZ":
            if params.p2 > 0:
                a, b = qubits
                for la, lb in _TWO_QUBIT_PAULIS:
                    ops = tuple(
                        (q, letter) for q, letter in ((a, la), (b, lb)) if letter != "I"
                    )
                    sites.append(FaultSite(idx, "after", "gate2", ops))
        elif name == "Prepare_Z":
            if params.p_prep > 0:
                sites.append(FaultSite(idx, "after", "prep", ((qubits[0], "X"),)))
        elif name == "Measure_Z":
            if params.p_meas > 0:
                label = labels.get(idx) or f"m?{idx}"
                sites.append(FaultSite(idx, "record", "readout", (), label=label))

        # Duration-derived dephasing after every timed operation except
        # preparation (no coherence yet) and measurement (unobservable) —
        # the exact control flow of NoiseModel.apply_operation_noise.
        if tracks_idle and name not in ("Prepare_Z", "Measure_Z") and durations[idx] > 0:
            duration = durations[idx]
            for q in qubits:
                sites.append(
                    FaultSite(idx, "after", "dephase", ((q, "Z"),), duration_us=duration)
                )

        if idle is not None:
            idle.mark_busy(qubits, ends[idx], idx)

    return sites


def _propagate_frames(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    sites: list[FaultSite],
) -> dict[str, np.ndarray]:
    """Conjugate every fault site through the remaining Clifford schedule.

    One walk over the instruction stream with a bit-packed Pauli frame per
    site (``(n_qubits, ceil(n_sites/64))`` x/z planes, one bit lane per
    site): faults are injected at their location, gates transform all lanes
    at once via the x/z conjugation rules, preparations clear the target
    qubit's lanes, and measurements record the X plane of the measured
    qubit — the lanes whose faults flip that outcome label.

    Returns ``label -> (W,) uint64`` flip columns over the site axis.
    """
    n_sites = len(sites)
    words = max(1, -(-n_sites // 64))
    occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
    x = np.zeros((n_qubits, words), dtype=np.uint64)
    z = np.zeros((n_qubits, words), dtype=np.uint64)
    label_flips: dict[str, np.ndarray] = {}

    pending: dict[tuple[int, str], list[tuple[int, FaultSite]]] = {}
    for s, site in enumerate(sites):
        pending.setdefault((site.index, site.when), []).append((s, site))

    def inject(s: int, site: FaultSite) -> None:
        w, sh = divmod(s, 64)
        bit = np.uint64(1) << np.uint64(sh)
        for q, letter in site.pauli:
            if letter in ("X", "Y"):
                x[q, w] ^= bit
            if letter in ("Z", "Y"):
                z[q, w] ^= bit

    cols = circuit.sorted_columns()
    _VISIT_COUNTS["propagate"] += cols.n
    names, qsites, labels = cols.names, cols.sites, cols.labels
    for idx in range(cols.n):
        name = names[idx]
        qubits = resolve_qubits(name, qsites[idx], occupancy, ion_index)
        for s, site in pending.get((idx, "before"), ()):
            inject(s, site)

        if name == "Load":
            apply_load(qsites[idx][0], occupancy, ion_index, n_qubits)
        elif name == "Move":
            apply_move(qsites[idx][0], qsites[idx][1], occupancy)
        elif name == "Prepare_Z":
            q = qubits[0]
            x[q] = 0
            z[q] = 0
        elif name == "Measure_Z":
            label_flips[labels.get(idx) or f"m?{idx}"] = x[qubits[0]].copy()
        elif name in _FRAME_PHASE:
            q = qubits[0]
            z[q] ^= x[q]
        elif name in _FRAME_SQRT_X:
            q = qubits[0]
            x[q] ^= z[q]
        elif name in _FRAME_SWAP:
            q = qubits[0]
            t = x[q].copy()
            x[q] = z[q]
            z[q] = t
        elif name in _FRAME_PAULI:
            pass
        elif name == "ZZ":
            a, b = qubits
            t = x[a] ^ x[b]
            z[a] ^= t
            z[b] ^= t
        elif name in NON_CLIFFORD_GATES:
            raise DemExtractionError(
                f"{name} is non-Clifford: its per-shot quasi-Clifford substitutes "
                "have no fixed fault footprint, so no detector error model exists"
            )
        else:
            raise DemExtractionError(f"unknown instruction {name!r} in DEM extraction")

        for s, site in pending.get((idx, "after"), ()):
            inject(s, site)
        for s, site in pending.get((idx, "record"), ()):
            w, sh = divmod(s, 64)
            assert site.label is not None
            label_flips[site.label][w] ^= np.uint64(1) << np.uint64(sh)

    return label_flips


class FaultTable:
    """Noise-structure-level extraction result: per-site detector footprints.

    ``footprints[s]`` is the sorted tuple of detector ids fault site
    ``sites[s]`` fires; ``observables[s]`` a bitmask over observables it
    flips.  Probability-free: combine with any parameter set of the same
    :func:`dem_structure_key` via :func:`build_dem`.

    Tables built by the periodic extractor carry period metadata —
    ``method`` (``"periodic"`` vs ``"full"``), ``sites_per_round`` (fault
    sites per bulk QEC round), ``n_bulk_rounds`` (tiled bulk rounds), and
    ``detector_period`` (detector-id stride of one bulk round, ``None``
    when the per-round detector shift is not a uniform offset) — and
    materialize :attr:`sites` / :attr:`footprints` lazily from the tiling
    recipe on first access: :func:`build_dem` consumes the columnar
    :meth:`site_columns` plus footprints, so the per-site objects are only
    ever built for consumers that genuinely want them (equivalence tests,
    ``keep_sources``, CLI summaries).
    """

    def __init__(
        self,
        sites: list[FaultSite] | None = None,
        footprints: list[tuple[int, ...]] | None = None,
        observables: np.ndarray | None = None,
        n_detectors: int = 0,
        n_observables: int = 0,
        *,
        method: str = "full",
        sites_per_round: int | None = None,
        n_bulk_rounds: int | None = None,
        detector_period: int | None = None,
        tiling: "_Tiling | None" = None,
    ):
        if tiling is None and (sites is None or footprints is None or observables is None):
            raise ValueError("an eager FaultTable needs sites, footprints, and observables")
        self._sites = sites
        self._footprints = footprints
        self._observables = observables
        self.n_detectors = n_detectors
        self.n_observables = n_observables
        self.method = method
        self.sites_per_round = sites_per_round
        self.n_bulk_rounds = n_bulk_rounds
        self.detector_period = detector_period
        self._tiling = tiling
        self._kind_codes: np.ndarray | None = None
        self._durations: np.ndarray | None = None

    @property
    def sites(self) -> list[FaultSite]:
        if self._sites is None:
            self._sites = self._tiling.materialize_sites()
        return self._sites

    @property
    def footprints(self) -> list[tuple[int, ...]]:
        if self._footprints is None:
            self._footprints = self._tiling.materialize_footprints()
        return self._footprints

    @property
    def observables(self) -> np.ndarray:
        if self._observables is None:
            self._observables = self._tiling.materialize_observables()
        return self._observables

    @property
    def n_sites(self) -> int:
        if self._sites is not None:
            return len(self._sites)
        return self._tiling.n_sites

    def site_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-site ``(kind codes, durations)`` columns (see ``_KIND_CODE``).

        The axis :func:`build_dem` vectorizes :meth:`FaultSite.probability`
        over — assembled directly from the tiling recipe when the site
        objects have not been materialized.
        """
        if self._kind_codes is None:
            if self._sites is None:
                self._kind_codes, self._durations = self._tiling.site_columns()
            else:  # eager table: derive the columns from the site objects
                self._kind_codes = np.fromiter(
                    (_KIND_CODE[s.kind] for s in self._sites),
                    dtype=np.int8,
                    count=len(self._sites),
                )
                self._durations = np.fromiter(
                    (s.duration_us for s in self._sites),
                    dtype=np.float64,
                    count=len(self._sites),
                )
        return self._kind_codes, self._durations

    def kind_counts(self) -> dict[str, int]:
        """Site counts per channel kind, without materializing site objects."""
        codes, _ = self.site_columns()
        names = {code: kind for kind, code in _KIND_CODE.items()}
        values, counts = np.unique(codes, return_counts=True)
        return {names[int(v)]: int(c) for v, c in zip(values, counts)}


def _xor_columns(
    label_flips: dict[str, np.ndarray], labels: list[str], words: int
) -> np.ndarray:
    col = np.zeros(words, dtype=np.uint64)
    for lab in labels:
        try:
            col ^= label_flips[lab]
        except KeyError:
            raise ValueError(f"detector references unknown measurement label {lab!r}") from None
    return col


def _project(
    sites: list[FaultSite],
    label_flips: dict[str, np.ndarray],
    detectors: list[list[str]],
    observables: list[list[str]],
) -> tuple[list[tuple[int, ...]], np.ndarray]:
    """Project per-site flip columns onto detector footprints + obs masks."""
    n_sites = len(sites)
    words = max(1, -(-n_sites // 64))

    footprints: list[list[int]] = [[] for _ in range(n_sites)]
    for d, labels in enumerate(detectors):
        col = _xor_columns(label_flips, labels, words)
        for s in np.nonzero(unpack_bits(col, n_sites))[0] if n_sites else ():
            footprints[s].append(d)
    obs_mask = np.zeros(n_sites, dtype=np.uint64)
    for o, labels in enumerate(observables):
        col = _xor_columns(label_flips, labels, words)
        if n_sites:
            obs_mask[np.nonzero(unpack_bits(col, n_sites))[0]] |= np.uint64(1 << o)
    return [tuple(fp) for fp in footprints], obs_mask


def extract_fault_table(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
    detectors: list[list[str]],
    observables: list[list[str]],
    *,
    method: str = "auto",
    template: "PeriodicTemplate | None" = None,
) -> FaultTable:
    """Enumerate fault sites and project their flips onto detectors.

    ``detectors[d]`` / ``observables[o]`` are measurement-label sets whose
    XOR parity is deterministic in the noiseless circuit; detector ids in
    the resulting table index these lists.

    ``method`` selects the extraction path: ``"full"`` walks every
    instruction of the sorted stream (the oracle — kept verbatim),
    ``"periodic"`` requires the rounds-independent tiling path built from
    ``template`` (a :func:`make_periodic_template` bundle for the same
    patch/basis/profile/noise structure) and raises
    :class:`DemExtractionError` when its structural preconditions fail,
    and ``"auto"`` (default) uses the periodic path when a template is
    given and every precondition holds, silently falling back to the full
    walk otherwise — in particular whenever the compiler's template replay
    itself fell back to round-by-round scheduling (no
    :class:`~repro.hardware.circuit.ReplayBlock` metadata).  Both paths
    produce bit-identical tables (``tests/test_dem_periodic.py``).
    """
    if method not in ("auto", "full", "periodic"):
        raise ValueError(f"method must be 'auto', 'full', or 'periodic', got {method!r}")
    if method != "full" and template is not None:
        if (
            template.circuit is circuit
            and template.detectors == detectors
            and template.observables == observables
        ):
            return template.table  # the target *is* the template compile
        table = _extract_periodic(
            circuit, initial_occupancy, params, detectors, observables, template
        )
        if table is not None:
            return table
        if method == "periodic":
            raise DemExtractionError(
                "periodic extraction preconditions not met for this circuit "
                "(no single replay block, non-periodic replica region, or "
                "template/target structure mismatch)"
            )
    elif method == "periodic":
        raise DemExtractionError("periodic extraction requires a template")

    sites = enumerate_fault_sites(circuit, initial_occupancy, params)
    label_flips = _propagate_frames(circuit, initial_occupancy, sites)
    footprints, obs_mask = _project(sites, label_flips, detectors, observables)
    return FaultTable(
        sites=sites,
        footprints=footprints,
        observables=obs_mask,
        n_detectors=len(detectors),
        n_observables=len(observables),
    )


# --------------------------------------------------------- periodic tiling
#
# A compiled memory circuit is (prologue + transient round) | C replicated
# rounds | (final measurement block): the syndrome scheduler compiles one
# template round and replays it ``C`` times as one tiled array chunk
# (:meth:`HardwareCircuit.replay_block`, PR 5).  In *execution order* the
# replica region is an exact +B translation: with ``B`` rows per round and
# ``h`` the first sorted position of a copy-2 row, position ``p + B`` holds
# row ``p``'s row plus ``B`` for every ``p`` in ``[h, tau - B)``,
# ``tau = h + (C - 2) * B``.  Fault sites, frame footprints, and observable
# masks inherit that translation: window ``W_j = [h + jB, h + (j+1)B)``
# repeats window ``W_1`` with site indices shifted by ``(j-1) * B``,
# measurement labels shifted one replay copy per window, and detector ids
# mapped through the +1-copy detector translation — because Pauli frames of
# data qubits reach a per-round fixed point within two rounds (measure-qubit
# lanes are cleared by the next round's preparation), so every bulk round
# sees the same frame picture up to relabeling.
#
# The periodic extractor therefore walks *nothing* of the target circuit:
# it takes a cached small-rounds template compile (full-walk oracle), keeps
# its prologue + W0 + W1 + epilogue sites, and tiles W1 across the target's
# bulk by pure index arithmetic.  Every structural assumption is *checked*
# against the target's columns (exact +B row translation, constant per-round
# time step, bitwise head/tail equality, bitwise idle-gap reproduction at
# every tiled offset, detector/label translation validity) and the template
# proves its own translation invariance window-over-window before use
# (:meth:`PeriodicTemplate._self_check`); any violation falls back to the
# full walk, so the fast path can only ever produce the oracle's answer.


def _replay_geometry(circuit: HardwareCircuit) -> dict | None:
    """The periodic structure of a replayed circuit, or ``None``.

    Validates that the circuit carries exactly one replay record whose
    replica region is an exact +B translation in execution order with a
    constant per-round time step; returns the geometry the tiling needs
    (sorted columns, ``h``, ``B``, ``C``, ``tau``).
    """
    metas = circuit.replay_blocks
    if len(metas) != 1:
        return None
    if getattr(circuit, "_extra_sites", None):
        return None  # arity>2 rows are invisible to the column checks below
    meta = metas[0]
    B, C = meta.block, meta.copies
    if B <= 0 or C < 4:
        return None
    cols = circuit.sorted_columns()
    n = cols.n
    order = circuit.sort_order()
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.arange(n, dtype=np.int64)
    h = int(inv[meta.chunk_start + B : meta.chunk_start + 2 * B].min())
    tau = h + (C - 2) * B
    if tau > n or tau < h + 2 * B:
        return None
    if not np.array_equal(order[h + B : tau], order[h : tau - B] + B):
        return None
    diffs = cols.t[h + B : tau] - cols.t[h : tau - B]
    if diffs.size and not (np.all(diffs == diffs[0]) and diffs[0] > 0):
        return None
    for arr in (cols.codes, cols.site0, cols.site1, cols.nsites, cols.duration):
        if not np.array_equal(arr[h + B : tau], arr[h : tau - B]):
            return None
    return {"meta": meta, "cols": cols, "h": h, "B": B, "C": C, "tau": tau, "n": n}


def _label_decomp(meta) -> dict[str, tuple[int, str]]:
    """Measurement label -> (replay copy, template base label).

    Copy 0 is the template round itself; copy ``k >= 1`` indexes
    ``meta.label_maps[k - 1]``.
    """
    decomp: dict[str, tuple[int, str]] = {}
    for base in meta.label_maps[0]:
        decomp[base] = (0, base)
    for k, relabel in enumerate(meta.label_maps, start=1):
        for base, lab in relabel.items():
            decomp[lab] = (k, base)
    return decomp


def _label_next(meta) -> dict[str, str]:
    """Replay label -> the same measurement's label one copy later."""
    nxt: dict[str, str] = {}
    if not meta.label_maps:
        return nxt
    for base in meta.label_maps[0]:
        prev = base
        for relabel in meta.label_maps:
            cur = relabel[base]
            nxt[prev] = cur
            prev = cur
    return nxt


def _detector_index(detectors: list[list[str]]) -> dict[frozenset, int] | None:
    index: dict[frozenset, int] = {}
    for d, labels in enumerate(detectors):
        fs = frozenset(labels)
        if fs in index:
            return None  # ambiguous detector identity
        index[fs] = d
    return index


def _detector_shift_map(
    detectors: list[list[str]],
    index: dict[frozenset, int],
    label_next: dict[str, str],
) -> np.ndarray:
    """Detector id -> id of its one-copy-later translate (-1 when none).

    A detector translates when every one of its labels has a one-copy-later
    counterpart (see :func:`_label_next`) and the translated label set is
    itself a detector.
    """
    dnext = np.full(len(detectors), -1, dtype=np.int64)
    nxt = label_next.get
    found = index.get
    for d, labels in enumerate(detectors):
        shifted = [nxt(lab) for lab in labels]
        if None not in shifted:
            j = found(frozenset(shifted))
            if j is not None:
                dnext[d] = j
    return dnext


class PeriodicTemplate:
    """Rounds-independent extraction template: one small compile, walked once.

    Bundles a template compile's circuit, detector/observable layout, and
    full-walk oracle :class:`FaultTable` together with the precomputed
    partition of its sites into prologue+W0 (copied verbatim), the W1
    generator window (tiled across the target's bulk), and the epilogue
    block (index/label-shifted) — everything
    :func:`extract_fault_table`'s periodic path needs, independent of the
    target's round count.  Build via :func:`make_periodic_template`.
    """

    def __init__(
        self,
        circuit: HardwareCircuit,
        initial_occupancy: dict[int, int],
        structure_key: tuple,
        detectors: list[list[str]],
        observables: list[list[str]],
        table: FaultTable,
        gap_preds: list[int] | None,
        geom: dict,
    ):
        self.circuit = circuit
        self.initial_occupancy = dict(initial_occupancy)
        self.structure_key = structure_key
        self.detectors = detectors
        self.observables = observables
        self.table = table
        self.geom = geom
        self.decomp = _label_decomp(geom["meta"])
        self.det_index = _detector_index(detectors)
        self.dnext = (
            _detector_shift_map(detectors, self.det_index, _label_next(geom["meta"]))
            if self.det_index is not None
            else None
        )
        # Fixed-size label views of the template's own columns, precomputed
        # so the per-target checks in _extract_periodic never iterate the
        # target's full (O(rounds)-sized) label dict in Python.
        labs = geom["cols"].labels
        head = geom["h"] + 2 * geom["B"]
        self.head_labels = {p: l for p, l in labs.items() if p < head}
        self.tail_label_offsets = {
            p - geom["tau"]: l for p, l in labs.items() if p >= geom["tau"]
        }

        sites = table.sites
        self.site_pos = np.fromiter(
            (s.index for s in sites), dtype=np.int64, count=len(sites)
        )
        # Predecessor sorted-position per site (idle sites only, else -2).
        self.pred_pos = np.full(len(sites), -2, dtype=np.int64)
        if gap_preds is not None:
            idle = [i for i, s in enumerate(sites) if s.kind == "idle"]
            if len(idle) != len(gap_preds):  # pragma: no cover - internal invariant
                raise AssertionError("gap predecessor bookkeeping out of sync")
            self.pred_pos[idle] = gap_preds

        h, B, tau = geom["h"], geom["B"], geom["tau"]
        self.i_head = int(np.searchsorted(self.site_pos, h + B))
        self.i_gen = int(np.searchsorted(self.site_pos, h + 2 * B))
        self.i_tail = int(np.searchsorted(self.site_pos, tau))
        kinds, durs = table.site_columns()
        self.kinds, self.durs = kinds, durs

        # Generator window (W1) views.
        g = slice(self.i_head, self.i_gen)
        self.g_sites = sites[g]
        self.g_fps = table.footprints[g]
        self.g_obs = table.observables[g]
        self.g_kinds, self.g_durs = kinds[g], durs[g]
        flat: list[int] = []
        bounds: list[tuple[int, int]] = []
        for fp in self.g_fps:
            bounds.append((len(flat), len(flat) + len(fp)))
            flat.extend(fp)
        self.g_flat_ids = np.array(flat, dtype=np.int64)
        self.g_fp_bounds = bounds
        # Positions (i, i+1) of g_flat_ids inside the *same* footprint —
        # the vectorized sortedness probe of the tiling's chain check.
        starts = {a for a, b in bounds}
        self.g_intra = np.array(
            [i for i in range(max(len(flat) - 1, 0)) if i + 1 not in starts],
            dtype=np.int64,
        )
        g_idle = [i for i, s in enumerate(self.g_sites) if s.kind == "idle"]
        self.g_idle_a = self.site_pos[g][g_idle]
        self.g_idle_b = self.pred_pos[g][g_idle]
        self.g_idle_durs = self.g_durs[g_idle]
        self.g_read_kb: list[tuple[int, str] | None] = [
            self.decomp.get(s.label) if s.label is not None else None
            for s in self.g_sites
        ]

        # Epilogue (tail) views.
        t = slice(self.i_tail, len(sites))
        self.t_sites = sites[t]
        self.t_fps = table.footprints[t]
        self.t_obs = table.observables[t]
        self.t_kinds, self.t_durs = kinds[t], durs[t]
        t_idle = [i for i, s in enumerate(self.t_sites) if s.kind == "idle"]
        self.t_idle_a = self.site_pos[t][t_idle]
        self.t_idle_b = self.pred_pos[t][t_idle]
        self.t_idle_durs = self.t_durs[t_idle]

        self.usable = (
            self.det_index is not None
            and self.dnext is not None
            and (self.g_idle_b >= h).all()
            and (self.t_idle_b >= h).all()
            and all(
                kb is not None and kb[0] >= 1
                for kb, s in zip(self.g_read_kb, self.g_sites)
                if s.label is not None
            )
            and self._self_check()
        )

    # One window-translation comparison against the oracle's own data: the
    # template certifies that its small bulk already repeats *exactly*
    # (sites, labels one copy apart, footprints through the detector
    # translation, observables, durations) before any tiling trusts it.
    def _windows_translate(self, j: int) -> bool:
        h, B = self.geom["h"], self.geom["B"]
        pos = self.site_pos
        lo1, hi1 = np.searchsorted(pos, (h + j * B, h + (j + 1) * B))
        lo2, hi2 = np.searchsorted(pos, (h + (j + 1) * B, h + (j + 2) * B))
        if hi1 - lo1 != hi2 - lo2 or hi1 == lo1:
            return False
        sites, fps = self.table.sites, self.table.footprints
        dn = self.dnext
        for i1, i2 in zip(range(lo1, hi1), range(lo2, hi2)):
            s1, s2 = sites[i1], sites[i2]
            if s2.index != s1.index + B:
                return False
            if (s1.when, s1.kind, s1.pauli) != (s2.when, s2.kind, s2.pauli):
                return False
            if s1.duration_us != s2.duration_us:
                return False
            if (s1.label is None) != (s2.label is None):
                return False
            if s1.label is not None:
                kb1, kb2 = self.decomp.get(s1.label), self.decomp.get(s2.label)
                if kb1 is None or kb2 is None or kb2 != (kb1[0] + 1, kb1[1]):
                    return False
            f1, f2 = fps[i1], fps[i2]
            if len(f1) != len(f2) or any(dn[a] != b for a, b in zip(f1, f2)):
                return False
        if not np.array_equal(
            self.table.observables[lo1:hi1], self.table.observables[lo2:hi2]
        ):
            return False
        return True

    def _self_check(self) -> bool:
        C = self.geom["C"]
        checked = {1, 2, C - 4}  # W1->W2, W2->W3, and the last window pair
        return all(self._windows_translate(j) for j in checked)


def make_periodic_template(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
    detectors: list[list[str]],
    observables: list[list[str]],
) -> PeriodicTemplate | None:
    """Extract a template compile once (full walk) and bundle it for tiling.

    Returns ``None`` when the circuit cannot serve as a periodic template:
    no single replay block, fewer than 6 replay copies (the self-check
    needs three interior window pairs), a non-periodic replica region, or
    a failed window-translation self-check.
    """
    geom = _replay_geometry(circuit)
    if geom is None or geom["C"] < 6:
        return None
    gap_preds: list[int] | None = [] if params.t2_us is not None else None
    sites = enumerate_fault_sites(
        circuit, initial_occupancy, params, _gap_preds=gap_preds
    )
    if not sites:
        return None  # nothing to tile; the full walk is free anyway
    label_flips = _propagate_frames(circuit, initial_occupancy, sites)
    footprints, obs_mask = _project(sites, label_flips, detectors, observables)
    table = FaultTable(
        sites=sites,
        footprints=footprints,
        observables=obs_mask,
        n_detectors=len(detectors),
        n_observables=len(observables),
    )
    template = PeriodicTemplate(
        circuit,
        initial_occupancy,
        dem_structure_key(params),
        detectors,
        observables,
        table,
        gap_preds,
        geom,
    )
    return template if template.usable else None


class _Tiling:
    """Lazy materialization recipe of a periodically extracted table.

    Holds everything :func:`_extract_periodic` verified — the template, the
    target's window count, index/label/detector translations — and builds
    site objects / footprints / observable masks only when a consumer asks
    (:func:`build_dem` reads :meth:`site_columns` + footprints and never
    pays for ~``n_sites`` frozen dataclass constructions).
    """

    def __init__(
        self,
        template: PeriodicTemplate,
        n_win: int,
        B: int,
        d_pos: int,
        label_maps,
        dnext_big: np.ndarray,
        tail_fps: list[tuple[int, ...]],
        tail_labels: list[str | None],
    ):
        self.template = template
        self.n_win = n_win
        self.B = B
        self.d_pos = d_pos
        self.label_maps = label_maps
        self.dnext_big = dnext_big
        self.tail_fps = tail_fps
        self.tail_labels = tail_labels

    @property
    def n_sites(self) -> int:
        tpl = self.template
        n_gen = tpl.i_gen - tpl.i_head
        return tpl.i_gen + (self.n_win - 1) * n_gen + len(tpl.t_sites)

    def materialize_sites(self) -> list[FaultSite]:
        tpl = self.template
        out = list(tpl.table.sites[: tpl.i_gen])  # prologue + W0 + W1, verbatim
        for j in range(2, self.n_win + 1):
            off = (j - 1) * self.B
            for s, kb in zip(tpl.g_sites, tpl.g_read_kb):
                label = None if kb is None else self.label_maps[kb[0] + j - 2][kb[1]]
                out.append(
                    FaultSite(
                        s.index + off, s.when, s.kind, s.pauli, label, s.duration_us
                    )
                )
        for s, label in zip(tpl.t_sites, self.tail_labels):
            out.append(
                FaultSite(
                    s.index + self.d_pos, s.when, s.kind, s.pauli, label, s.duration_us
                )
            )
        return out

    def materialize_footprints(self) -> list[tuple[int, ...]]:
        tpl = self.template
        out = list(tpl.table.footprints[: tpl.i_gen])
        ids = tpl.g_flat_ids
        for _ in range(2, self.n_win + 1):
            ids = self.dnext_big[ids]
            flat = ids.tolist()
            out.extend(tuple(flat[a:b]) for a, b in tpl.g_fp_bounds)
        out.extend(self.tail_fps)
        return out

    def materialize_observables(self) -> np.ndarray:
        tpl = self.template
        return np.concatenate(
            [
                tpl.table.observables[: tpl.i_gen],
                np.tile(tpl.g_obs, self.n_win - 1),
                tpl.t_obs,
            ]
        )

    def site_columns(self) -> tuple[np.ndarray, np.ndarray]:
        tpl = self.template
        kinds = np.concatenate(
            [tpl.kinds[: tpl.i_gen], np.tile(tpl.g_kinds, self.n_win - 1), tpl.t_kinds]
        )
        durs = np.concatenate(
            [tpl.durs[: tpl.i_gen], np.tile(tpl.g_durs, self.n_win - 1), tpl.t_durs]
        )
        return kinds, durs


class _TargetCheck:
    """One verified structural match of a target compile against a template.

    Everything :func:`_verify_periodic` proves depends only on the target's
    sorted columns, detector/observable layout, and the template — never on
    the noise *rates* — so the verdict is memoized on the sorted-columns
    object and later extractions for the same compile (e.g. other noise
    presets with the same structure key) skip straight to stamping out a
    table.
    The one structure-dependent piece, the bitwise idle-gap verification
    (only meaningful when dephasing is on), runs lazily once via
    :meth:`idle_gaps_ok`.
    """

    __slots__ = (
        "template",
        "detectors",
        "observables",
        "tiling",
        "period",
        "n_win",
        "B",
        "h",
        "n_b",
        "d_pos",
        "n_bulk",
        "idle_ok",
    )

    def __init__(
        self,
        template: PeriodicTemplate,
        detectors: list[list[str]],
        observables: list[list[str]],
        tiling: "_Tiling",
        period: int | None,
        n_win: int,
        B: int,
        h: int,
        n_b: int,
        d_pos: int,
        n_bulk: int,
    ):
        self.template = template
        self.detectors = detectors
        self.observables = observables
        self.tiling = tiling
        self.period = period
        self.n_win = n_win
        self.B = B
        self.h = h
        self.n_b = n_b
        self.d_pos = d_pos
        self.n_bulk = n_bulk
        self.idle_ok: bool | None = None

    def idle_gaps_ok(self, cols_b) -> bool:
        """Bitwise idle-gap reproduction at every tiled offset (memoized).

        Recomputes every tiled gap from the target's own time columns,
        exactly as the oracle would (start minus predecessor end), and
        requires bitwise equality with the template's durations.
        """
        if self.idle_ok is None:
            self.idle_ok = self._check_idle(cols_b)
        return self.idle_ok

    def _check_idle(self, cols_b) -> bool:
        tpl = self.template
        t_b, tend_b = cols_b.t, cols_b.t_end
        if tpl.g_idle_a.size:
            offs = (np.arange(self.n_win, dtype=np.int64) * self.B)[:, None]
            a = tpl.g_idle_a[None, :] + offs
            b = tpl.g_idle_b[None, :] + offs
            if a.max() >= self.n_b or b.min() < self.h:
                return False
            if not (t_b[a] - tend_b[b] == tpl.g_idle_durs[None, :]).all():
                return False
        if tpl.t_idle_a.size:
            a = tpl.t_idle_a + self.d_pos
            b = tpl.t_idle_b + self.d_pos
            if a.max() >= self.n_b or b.min() < self.h:
                return False
            if not (t_b[a] - tend_b[b] == tpl.t_idle_durs).all():
                return False
        return True

    def table(self) -> FaultTable:
        """A fresh lazy fault table over the shared tiling recipe."""
        tpl = self.template
        return FaultTable(
            n_detectors=len(self.detectors),
            n_observables=len(self.observables),
            method="periodic",
            sites_per_round=tpl.i_gen - tpl.i_head,
            n_bulk_rounds=self.n_bulk,
            detector_period=self.period,
            tiling=self.tiling,
        )


def _extract_periodic(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
    detectors: list[list[str]],
    observables: list[list[str]],
    template: PeriodicTemplate,
) -> FaultTable | None:
    """Tile a template's fault table onto ``circuit``, or ``None``.

    Every structural precondition is verified against the target's own
    columns before anything is trusted (see :func:`_verify_periodic`); any
    violation returns ``None`` and the caller falls back to the full walk.
    The verification verdict is rate-independent, so it is memoized per
    (sorted columns, template, detector layout) and repeat extractions cost
    O(one table construction).
    """
    if not template.usable:
        return None
    if dem_structure_key(params) != template.structure_key:
        return None
    if dict(initial_occupancy) != template.initial_occupancy:
        return None
    # The verification verdict is memoized *on* the sorted-columns object:
    # the circuit rebuilds that object on any mutation, so a stale entry is
    # unreachable by construction and the memo dies with its compile.
    cols_b = circuit.sorted_columns()
    entry = getattr(cols_b, "_periodic_check", None)
    if (
        entry is None
        or entry.template is not template
        or (entry.detectors is not detectors and entry.detectors != detectors)
        or entry.observables != observables
    ):
        entry = _verify_periodic(circuit, detectors, observables, template)
        if entry is None:
            return None
        cols_b._periodic_check = entry
    if params.t2_us is not None and not entry.idle_gaps_ok(cols_b):
        return None
    return entry.table()


def _verify_periodic(
    circuit: HardwareCircuit,
    detectors: list[list[str]],
    observables: list[list[str]],
    template: PeriodicTemplate,
) -> _TargetCheck | None:
    """Prove ``circuit`` is a tiling of ``template``, or ``None``.

    The checks (in order): a single periodic replay region with the
    template's ``B`` and ``h``; bitwise-identical prologue + first two
    windows (rows, times, labels); bitwise-identical epilogue rows with
    consistent label translation; observable definitions that translate
    exactly; early detector ids resolving identically in both compiles;
    footprint translation chains that never leave the detector set and stay
    sorted; and readout labels of the first window matching the template's.
    (Idle-gap durations are checked lazily — see
    :meth:`_TargetCheck.idle_gaps_ok`.)
    """
    geom_s = template.geom
    geom_b = _replay_geometry(circuit)
    if geom_b is None:
        return None
    B, h = geom_s["B"], geom_s["h"]
    if geom_b["B"] != B or geom_b["h"] != h:
        return None
    cols_s, cols_b = geom_s["cols"], geom_b["cols"]
    tau_s, tau_b = geom_s["tau"], geom_b["tau"]
    n_s, n_b = geom_s["n"], geom_b["n"]
    c_s, c_b = geom_s["C"], geom_b["C"]
    meta_b = geom_b["meta"]
    if n_b - tau_b != n_s - tau_s:
        return None
    head = h + 2 * B

    # Bitwise-identical prologue + W0 + W1 (rows, times, and labels).
    for a_b, a_s in (
        (cols_b.t, cols_s.t),
        (cols_b.codes, cols_s.codes),
        (cols_b.site0, cols_s.site0),
        (cols_b.site1, cols_s.site1),
        (cols_b.nsites, cols_s.nsites),
        (cols_b.duration, cols_s.duration),
    ):
        if not np.array_equal(a_b[:head], a_s[:head]):
            return None
    labs_b = cols_b.labels
    # Scan the target's labels once at C speed; Python-level work below is
    # bounded by the template's fixed-size head/tail label views.
    items_b = list(labs_b.items())
    pos_b = np.fromiter(labs_b.keys(), dtype=np.int64, count=len(labs_b))
    head_s = template.head_labels
    if int((pos_b < head).sum()) != len(head_s):
        return None
    for p, l in head_s.items():
        if labs_b.get(p) != l:
            return None

    # Bitwise-identical epilogue rows (up to the position shift d_pos).
    d_pos = tau_b - tau_s
    for a_b, a_s in (
        (cols_b.codes, cols_s.codes),
        (cols_b.site0, cols_s.site0),
        (cols_b.site1, cols_s.site1),
        (cols_b.nsites, cols_s.nsites),
        (cols_b.duration, cols_s.duration),
    ):
        if not np.array_equal(a_b[tau_b:], a_s[tau_s:]):
            return None
    tail_b = {
        items_b[i][0] - tau_b: items_b[i][1]
        for i in np.nonzero(pos_b >= tau_b)[0]
    }
    tail_s = template.tail_label_offsets
    if tail_b.keys() != tail_s.keys():
        return None
    tail_label = {tail_s[o]: tail_b[o] for o in tail_s}

    # Label translation: epilogue labels by position, replay labels by a
    # copy shift of d_copies; the two must agree where both apply.
    d_copies = c_b - c_s
    decomp_s = template.decomp

    def translate_label(lab: str) -> str | None:
        out = tail_label.get(lab)
        if out is not None:
            return out
        kb = decomp_s.get(lab)
        if kb is None:
            return None
        k2 = kb[0] + d_copies
        if k2 == 0:
            return kb[1]
        if 1 <= k2 <= c_b:
            return meta_b.label_maps[k2 - 1].get(kb[1])
        return None

    for small_lab, big_lab in tail_label.items():
        kb = decomp_s.get(small_lab)
        if kb is None:
            continue  # epilogue-born label (final data measurement)
        k2 = kb[0] + d_copies
        expect = (
            kb[1]
            if k2 == 0
            else (meta_b.label_maps[k2 - 1].get(kb[1]) if 1 <= k2 <= c_b else None)
        )
        if expect != big_lab:
            return None

    # Observables must be the template's observables, translated.
    if len(observables) != len(template.observables):
        return None
    for obs_s, obs_b in zip(template.observables, observables):
        translated = [translate_label(lab) for lab in obs_s]
        if None in translated or frozenset(translated) != frozenset(obs_b):
            return None

    # Detector machinery on the target side.
    index_b = _detector_index(detectors)
    if index_b is None:
        return None
    dnext_b = _detector_shift_map(detectors, index_b, _label_next(meta_b))

    # Early detector ids (everything prologue/W0/W1 footprints reference)
    # must mean the same detector in both compiles.
    det_s = template.detectors
    early_ids = {d for fp in template.table.footprints[: template.i_gen] for d in fp}
    for i in early_ids:
        if i >= len(detectors) or index_b.get(frozenset(det_s[i])) != i:
            return None

    # Footprint translation chains: W_j ids are W1 ids pushed j-1 copies
    # forward; every step must stay a real detector and stay ascending
    # within each footprint (the oracle emits sorted tuples).
    n_win = c_b - 3  # generated windows W_1 .. W_{C-3}; W_0 lives in the head
    if n_win < 1:
        return None
    ids = template.g_flat_ids
    intra = template.g_intra
    for _ in range(n_win - 1):
        ids = dnext_b[ids] if ids.size else ids
        if ids.size and ids.min() < 0:
            return None
        if intra.size and np.any(ids[intra + 1] <= ids[intra]):
            return None

    # W1 readout labels: tiling generates window j's labels from the
    # target's label maps; at j=1 that must reproduce the template's own
    # labels (which the head check proved are the target's W1 labels), and
    # the deepest window must stay within the target's copy range.
    for s, kb in zip(template.g_sites, template.g_read_kb):
        if kb is None:
            continue
        k, base = kb
        if k + n_win - 2 >= c_b:
            return None
        if meta_b.label_maps[k - 1].get(base) != s.label:
            return None

    # Epilogue translation: site labels and detector footprints.
    det_big_of: dict[int, int] = {}

    def resolve_tail_det(i: int) -> int | None:
        j = det_big_of.get(i)
        if j is None:
            translated = [translate_label(lab) for lab in det_s[i]]
            j = -1 if None in translated else index_b.get(frozenset(translated), -1)
            det_big_of[i] = j
        return None if j < 0 else j

    tail_fps: list[tuple[int, ...]] = []
    for fp in template.t_fps:
        mapped = [resolve_tail_det(i) for i in fp]
        if None in mapped:
            return None
        tail_fps.append(tuple(sorted(mapped)))
    tail_labels: list[str | None] = []
    for s in template.t_sites:
        if s.label is None:
            tail_labels.append(None)
            continue
        label = tail_label.get(s.label)
        if label is None and s.label == f"m?{s.index}":
            label = f"m?{s.index + d_pos}"
        if label is None:
            return None
        tail_labels.append(label)

    valid = np.nonzero(dnext_b >= 0)[0]
    period: int | None = None
    if valid.size:
        diffs = dnext_b[valid] - valid
        if np.all(diffs == diffs[0]):
            period = int(diffs[0])

    tiling = _Tiling(
        template,
        n_win,
        B,
        d_pos,
        meta_b.label_maps,
        dnext_b,
        tail_fps,
        tail_labels,
    )
    return _TargetCheck(
        template,
        detectors,
        observables,
        tiling,
        period,
        n_win,
        B,
        h,
        n_b,
        d_pos,
        c_b - 2,
    )


@dataclass
class DetectorErrorModel:
    """Deduplicated error mechanisms of a noisy Clifford schedule.

    Mechanism ``m`` fires independently with probability ``probs[m]``,
    flipping the detectors in ``detectors[m]`` (sorted ids) and the
    observables set in bitmask ``observables[m]``.  ``sources`` (when
    extraction kept them) lists the concrete fault sites folded into each
    mechanism — the hook the cross-engine single-fault tests use to inject
    the same physical fault into the packed-tableau engine.
    """

    n_detectors: int
    n_observables: int
    probs: np.ndarray  # (M,) float64
    detectors: list[tuple[int, ...]]
    observables: np.ndarray  # (M,) uint64 bitmask
    sources: list[tuple[FaultSite, ...]] | None = None
    #: Detector-id stride of one bulk QEC round, propagated from
    #: :attr:`FaultTable.detector_period` by :func:`build_dem` (``None`` for
    #: full-walk tables): the hook ``build_dem_graph`` uses to stamp the
    #: matching graph's time-translation period.
    period: int | None = None

    @property
    def n_mechanisms(self) -> int:
        return len(self.detectors)

    def detection_rates(self) -> np.ndarray:
        """Analytic per-detector marginal firing rates under independence.

        Detector ``d`` fires when an odd number of its mechanisms fire:
        ``0.5 * (1 - prod_m (1 - 2 p_m))`` over the mechanisms touching it.
        One unbuffered ``np.multiply.at`` accumulation in mechanism order —
        bit-identical to the per-mechanism loop it replaced
        (:meth:`_detection_rates_loop`, kept as the test oracle).
        """
        prod = np.ones(self.n_detectors)
        lengths = np.fromiter(
            (len(dets) for dets in self.detectors), dtype=np.int64, count=len(self.detectors)
        )
        flat = np.fromiter(
            (d for dets in self.detectors for d in dets),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        np.multiply.at(prod, flat, np.repeat(1.0 - 2.0 * self.probs, lengths))
        return 0.5 * (1.0 - prod)

    def _detection_rates_loop(self) -> np.ndarray:
        prod = np.ones(self.n_detectors)
        for p, dets in zip(self.probs, self.detectors):
            for d in dets:
                prod[d] *= 1.0 - 2.0 * p
        return 0.5 * (1.0 - prod)

    def observable_rates(self) -> np.ndarray:
        """Analytic marginal flip rate per observable (raw, undecoded).

        Same accumulation scheme as :meth:`detection_rates`; the loop
        oracle survives as :meth:`_observable_rates_loop`.
        """
        prod = np.ones(self.n_observables)
        factors = 1.0 - 2.0 * self.probs
        masks = np.asarray(self.observables, dtype=np.uint64)
        for o in range(self.n_observables):
            hit = (masks >> np.uint64(o)) & np.uint64(1) != 0
            np.multiply.at(prod, np.full(int(hit.sum()), o, dtype=np.int64), factors[hit])
        return 0.5 * (1.0 - prod)

    def _observable_rates_loop(self) -> np.ndarray:
        prod = np.ones(self.n_observables)
        for p, mask in zip(self.probs, self.observables):
            for o in range(self.n_observables):
                if int(mask) >> o & 1:
                    prod[o] *= 1.0 - 2.0 * p
        return 0.5 * (1.0 - prod)

    def to_dict(self) -> dict:
        """JSON-friendly dump (the ``tiscc dem --json`` artifact)."""
        return {
            "n_detectors": self.n_detectors,
            "n_observables": self.n_observables,
            "n_mechanisms": self.n_mechanisms,
            "mechanisms": [
                {
                    "probability": float(p),
                    "detectors": list(dets),
                    "observables": int(mask),
                }
                for p, dets, mask in zip(self.probs, self.detectors, self.observables)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DetectorErrorModel {self.n_mechanisms} mechanisms over "
            f"{self.n_detectors} detectors / {self.n_observables} observables>"
        )


def _site_probabilities(table: FaultTable, params: NoiseParams) -> np.ndarray:
    """Vectorized :meth:`FaultSite.probability` over the whole table.

    One masked assignment per channel kind, with the dephasing formula
    applied elementwise — every output element is produced by the exact
    scalar operations of the per-site method.
    """
    kinds, durations = table.site_columns()
    probs = np.zeros(len(kinds), dtype=np.float64)
    probs[kinds == _KIND_CODE["gate1"]] = params.p1 / 3.0
    probs[kinds == _KIND_CODE["gate2"]] = params.p2 / 15.0
    probs[kinds == _KIND_CODE["prep"]] = params.p_prep
    probs[kinds == _KIND_CODE["readout"]] = params.p_meas
    if params.t2_us is not None:
        timed = kinds >= _KIND_CODE["dephase"]
        if timed.any():
            dur = durations[timed]
            probs[timed] = np.where(dur > 0, -0.5 * np.expm1(-dur / params.t2_us), 0.0)
    return probs


def build_dem(
    table: FaultTable, params: NoiseParams, keep_sources: bool = False
) -> DetectorErrorModel:
    """Fold a fault table and a parameter set into a deduplicated DEM.

    Sites with zero probability or no effect (empty footprint, no
    observable flip) are dropped; sites with identical (footprint,
    observable) signatures are XOR-combined
    (``p <- p_a (1 - p_b) + p_b (1 - p_a)``), which is exact for
    independent mechanisms.  Mechanisms come back sorted by footprint, so
    extraction is deterministic for a fixed circuit + noise pair.

    Probabilities are evaluated as one NumPy pass per channel kind over
    :meth:`FaultTable.site_columns` — the same scalar formulas as
    :meth:`FaultSite.probability`, applied elementwise, so the result is
    bit-identical to the per-site loop it replaced.  Site objects are only
    materialized when ``keep_sources`` asks for them, which keeps the
    periodic path's lazy tables lazy.
    """
    probs_all = _site_probabilities(table, params)
    sites = table.sites if keep_sources else None
    groups: dict[tuple[tuple[int, ...], int], list] = {}
    p_list = probs_all.tolist()
    obs_list = table.observables.tolist()
    for s, footprint in enumerate(table.footprints):
        p = p_list[s]
        if p <= 0.0:
            continue
        obs = obs_list[s]
        if not footprint and not obs:
            continue  # invisible fault: flips nothing deterministic
        entry = groups.get((footprint, obs))
        if entry is None:
            groups[(footprint, obs)] = [p, [s] if keep_sources else None]
        else:
            entry[0] = entry[0] * (1.0 - p) + p * (1.0 - entry[0])
            if keep_sources:
                entry[1].append(s)

    keys = sorted(groups)
    probs = np.array([groups[k][0] for k in keys], dtype=np.float64)
    return DetectorErrorModel(
        n_detectors=table.n_detectors,
        n_observables=table.n_observables,
        probs=probs,
        detectors=[k[0] for k in keys],
        observables=np.array([k[1] for k in keys], dtype=np.uint64),
        sources=(
            [tuple(sites[s] for s in groups[k][1]) for k in keys] if keep_sources else None
        ),
        period=table.detector_period,
    )


def extract_dem(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    noise: NoiseModel,
    detectors: list[list[str]],
    observables: list[list[str]],
    keep_sources: bool = False,
) -> DetectorErrorModel:
    """One-shot convenience: fault table + DEM for a single noise model.

    Callers sweeping rates should instead cache the
    :func:`extract_fault_table` result per :func:`dem_structure_key` and
    call :func:`build_dem` per parameter set (what
    :meth:`~repro.decode.memory.MemoryExperiment.detector_error_model`
    does).
    """
    table = extract_fault_table(
        circuit, initial_occupancy, noise.params, detectors, observables
    )
    return build_dem(table, noise.params, keep_sources=keep_sources)
