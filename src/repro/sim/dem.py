"""Detector-error-model (DEM) extraction from compiled hardware circuits.

Walks one compiled :class:`~repro.hardware.circuit.HardwareCircuit` *once*,
enumerating every Pauli fault a :class:`~repro.sim.noise.NoiseModel` could
inject (the exact channel structure of
:meth:`NoiseModel.apply_operation_noise`: depolarizing terms after gates,
mis-preparation flips, classical readout flips, and duration-derived
dephasing including idle gaps), and conjugates each fault through the
remaining Clifford schedule as a bit-packed Pauli frame — one bit lane per
fault site, all lanes propagated together.  A fault's observable effect is
the set of measurement labels whose outcomes it flips; projected onto a set
of *detectors* (label sets whose XOR is deterministic in the noiseless
circuit) and *observables* (deterministic logical readout parities), this
yields a Stim-style :class:`DetectorErrorModel`: deduplicated error
mechanisms with probabilities, detector footprints, and observable masks.

The DEM is the input to the tableau-free
:class:`~repro.sim.frame.FrameSampler`, which samples detection events and
observable flips for whole batches as bit-packed XORs over sampled
mechanisms — orders of magnitude faster than driving the packed tableau
per shot.

Exactness: Pauli frames commute through Clifford gates up to phase, so a
mechanism's detector footprint and observable flip are *exact* — every
single-fault prediction is verified against explicit Pauli injection into
the packed-tableau engine in ``tests/test_dem_equivalence.py``.  Two
standard first-order approximations relate DEM *sampling* to the tableau
noise channels: the three (fifteen) mutually-exclusive outcomes of a
depolarizing channel become independent mechanisms, and mechanisms with
identical footprints are XOR-combined (``p = p1(1-p2) + p2(1-p1)``); both
differ from the exclusive channel only at O(p^2).

Fault-site enumeration depends only on the noise model's *structure* (which
rates are nonzero — see :func:`dem_structure_key`), never on the rate
values, so callers sweeping a rate knob can extract the
:class:`FaultTable` once and rebuild cheap DEMs per parameter set via
:func:`build_dem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.model import SINGLE_QUBIT_GATES
from repro.sim.gates import NON_CLIFFORD_GATES
from repro.sim.interpreter import (
    apply_load,
    apply_move,
    init_run_state,
    resolve_qubits,
)
from repro.sim.noise import NoiseModel, NoiseParams
from repro.sim.packed import unpack_bits

__all__ = [
    "DemExtractionError",
    "FaultSite",
    "FaultTable",
    "DetectorErrorModel",
    "dem_structure_key",
    "enumerate_fault_sites",
    "extract_fault_table",
    "build_dem",
    "extract_dem",
]


class DemExtractionError(RuntimeError):
    """The circuit cannot be folded into a detector error model.

    Raised for non-Clifford schedules (quasi-probability T substitutes are
    per-shot random, so no fixed fault footprint exists) and unknown
    instructions.  Callers that want graceful degradation catch this and
    fall back to the packed-tableau engine.
    """


#: The 15 non-identity two-qubit Pauli terms of a two-qubit depolarizing
#: channel, as (letter on a, letter on b) with "I" meaning no action —
#: the same k -> (k >> 2, k & 3) decoding as NoiseModel._depolarize_2q.
_TWO_QUBIT_PAULIS: tuple[tuple[str, str], ...] = tuple(
    ("IXYZ"[k >> 2], "IXYZ"[k & 3]) for k in range(1, 16)
)

# Pauli-frame conjugation rules for the native Clifford gate set (signs are
# irrelevant to detector footprints, so only the x/z bit flow matters).
_FRAME_PHASE = frozenset({"Z_pi/4", "Z_-pi/4"})  # X -> +/-Y: z ^= x
_FRAME_SQRT_X = frozenset({"X_pi/4", "X_-pi/4"})  # Z -> +/-Y: x ^= z
_FRAME_SWAP = frozenset({"Y_pi/4", "Y_-pi/4"})  # X <-> +/-Z: swap x, z
_FRAME_PAULI = frozenset({"X_pi/2", "Y_pi/2", "Z_pi/2"})  # commute up to phase


@dataclass(frozen=True)
class FaultSite:
    """One potential fault location in the compiled instruction stream.

    ``index`` addresses ``circuit.sorted_instructions()``; ``when`` is
    ``"before"`` (idle-gap dephasing), ``"after"`` (post-operation
    channels), or ``"record"`` (classical readout flip on ``label``).
    ``pauli`` lists the injected Pauli as ``(tableau qubit, letter)`` pairs.
    ``kind`` selects the probability formula of :meth:`probability`;
    ``duration_us`` drives the dephasing kinds.
    """

    index: int
    when: str
    kind: str  # "gate1" | "gate2" | "prep" | "dephase" | "idle" | "readout"
    pauli: tuple[tuple[int, str], ...] = ()
    label: str | None = None
    duration_us: float = 0.0

    def probability(self, params: NoiseParams) -> float:
        """This site's firing probability under a parameter set.

        Mirrors :class:`~repro.sim.noise.NoiseModel` exactly: each
        depolarizing term carries ``p/3`` (``p/15`` for two-qubit), and the
        dephasing kinds use the duration formula of
        :meth:`NoiseModel.dephasing_probability`.
        """
        if self.kind == "gate1":
            return params.p1 / 3.0
        if self.kind == "gate2":
            return params.p2 / 15.0
        if self.kind == "prep":
            return params.p_prep
        if self.kind == "readout":
            return params.p_meas
        if self.kind in ("dephase", "idle"):
            if params.t2_us is None or self.duration_us <= 0:
                return 0.0
            return -0.5 * float(np.expm1(-self.duration_us / params.t2_us))
        raise ValueError(f"unknown fault kind {self.kind!r}")


def dem_structure_key(params: NoiseParams) -> tuple[bool, bool, bool, bool, bool]:
    """Which channels of a parameter set can fire at all.

    Fault-site enumeration and frame propagation depend only on this key —
    two models with the same key share a :class:`FaultTable` and differ
    only in the per-site probabilities of :func:`build_dem`.
    """
    return (
        params.p1 > 0,
        params.p2 > 0,
        params.p_prep > 0,
        params.p_meas > 0,
        params.t2_us is not None,
    )


def enumerate_fault_sites(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
) -> list[FaultSite]:
    """Every fault location the noise model can populate, in walk order.

    Replays the occupancy evolution of :class:`~repro.sim.batch.BatchRunner`
    (Load/Move bookkeeping, idle-gap tracking) without touching any quantum
    state, appending one :class:`FaultSite` per Pauli term of every channel
    whose rate is nonzero.
    """
    occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
    tracks_idle = params.t2_us is not None
    busy_until = np.zeros(n_qubits) if tracks_idle else None
    sites: list[FaultSite] = []

    cols = circuit.sorted_columns()
    names, qsites, labels = cols.names, cols.sites, cols.labels
    starts = cols.t.tolist()
    ends = cols.t_end.tolist()
    durations = cols.duration.tolist()
    for idx in range(cols.n):
        name = names[idx]
        qubits = resolve_qubits(name, qsites[idx], occupancy, ion_index)

        if busy_until is not None:
            for q in qubits:
                gap = starts[idx] - busy_until[q]
                if gap > 0:
                    sites.append(
                        FaultSite(idx, "before", "idle", ((q, "Z"),), duration_us=float(gap))
                    )

        if name == "Load":
            apply_load(qsites[idx][0], occupancy, ion_index, n_qubits)
        elif name == "Move":
            apply_move(qsites[idx][0], qsites[idx][1], occupancy)

        if not qubits:
            continue

        if name in SINGLE_QUBIT_GATES:
            if params.p1 > 0:
                for letter in "XYZ":
                    sites.append(FaultSite(idx, "after", "gate1", ((qubits[0], letter),)))
        elif name == "ZZ":
            if params.p2 > 0:
                a, b = qubits
                for la, lb in _TWO_QUBIT_PAULIS:
                    ops = tuple(
                        (q, letter) for q, letter in ((a, la), (b, lb)) if letter != "I"
                    )
                    sites.append(FaultSite(idx, "after", "gate2", ops))
        elif name == "Prepare_Z":
            if params.p_prep > 0:
                sites.append(FaultSite(idx, "after", "prep", ((qubits[0], "X"),)))
        elif name == "Measure_Z":
            if params.p_meas > 0:
                label = labels.get(idx) or f"m?{idx}"
                sites.append(FaultSite(idx, "record", "readout", (), label=label))

        # Duration-derived dephasing after every timed operation except
        # preparation (no coherence yet) and measurement (unobservable) —
        # the exact control flow of NoiseModel.apply_operation_noise.
        if tracks_idle and name not in ("Prepare_Z", "Measure_Z") and durations[idx] > 0:
            duration = durations[idx]
            for q in qubits:
                sites.append(
                    FaultSite(idx, "after", "dephase", ((q, "Z"),), duration_us=duration)
                )

        if busy_until is not None:
            for q in qubits:
                busy_until[q] = ends[idx]

    return sites


def _propagate_frames(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    sites: list[FaultSite],
) -> dict[str, np.ndarray]:
    """Conjugate every fault site through the remaining Clifford schedule.

    One walk over the instruction stream with a bit-packed Pauli frame per
    site (``(n_qubits, ceil(n_sites/64))`` x/z planes, one bit lane per
    site): faults are injected at their location, gates transform all lanes
    at once via the x/z conjugation rules, preparations clear the target
    qubit's lanes, and measurements record the X plane of the measured
    qubit — the lanes whose faults flip that outcome label.

    Returns ``label -> (W,) uint64`` flip columns over the site axis.
    """
    n_sites = len(sites)
    words = max(1, -(-n_sites // 64))
    occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
    x = np.zeros((n_qubits, words), dtype=np.uint64)
    z = np.zeros((n_qubits, words), dtype=np.uint64)
    label_flips: dict[str, np.ndarray] = {}

    pending: dict[tuple[int, str], list[tuple[int, FaultSite]]] = {}
    for s, site in enumerate(sites):
        pending.setdefault((site.index, site.when), []).append((s, site))

    def inject(s: int, site: FaultSite) -> None:
        w, sh = divmod(s, 64)
        bit = np.uint64(1) << np.uint64(sh)
        for q, letter in site.pauli:
            if letter in ("X", "Y"):
                x[q, w] ^= bit
            if letter in ("Z", "Y"):
                z[q, w] ^= bit

    cols = circuit.sorted_columns()
    names, qsites, labels = cols.names, cols.sites, cols.labels
    for idx in range(cols.n):
        name = names[idx]
        qubits = resolve_qubits(name, qsites[idx], occupancy, ion_index)
        for s, site in pending.get((idx, "before"), ()):
            inject(s, site)

        if name == "Load":
            apply_load(qsites[idx][0], occupancy, ion_index, n_qubits)
        elif name == "Move":
            apply_move(qsites[idx][0], qsites[idx][1], occupancy)
        elif name == "Prepare_Z":
            q = qubits[0]
            x[q] = 0
            z[q] = 0
        elif name == "Measure_Z":
            label_flips[labels.get(idx) or f"m?{idx}"] = x[qubits[0]].copy()
        elif name in _FRAME_PHASE:
            q = qubits[0]
            z[q] ^= x[q]
        elif name in _FRAME_SQRT_X:
            q = qubits[0]
            x[q] ^= z[q]
        elif name in _FRAME_SWAP:
            q = qubits[0]
            t = x[q].copy()
            x[q] = z[q]
            z[q] = t
        elif name in _FRAME_PAULI:
            pass
        elif name == "ZZ":
            a, b = qubits
            t = x[a] ^ x[b]
            z[a] ^= t
            z[b] ^= t
        elif name in NON_CLIFFORD_GATES:
            raise DemExtractionError(
                f"{name} is non-Clifford: its per-shot quasi-Clifford substitutes "
                "have no fixed fault footprint, so no detector error model exists"
            )
        else:
            raise DemExtractionError(f"unknown instruction {name!r} in DEM extraction")

        for s, site in pending.get((idx, "after"), ()):
            inject(s, site)
        for s, site in pending.get((idx, "record"), ()):
            w, sh = divmod(s, 64)
            assert site.label is not None
            label_flips[site.label][w] ^= np.uint64(1) << np.uint64(sh)

    return label_flips


@dataclass
class FaultTable:
    """Noise-structure-level extraction result: per-site detector footprints.

    ``footprints[s]`` is the sorted tuple of detector ids fault site
    ``sites[s]`` fires; ``observables[s]`` a bitmask over observables it
    flips.  Probability-free: combine with any parameter set of the same
    :func:`dem_structure_key` via :func:`build_dem`.
    """

    sites: list[FaultSite]
    footprints: list[tuple[int, ...]]
    observables: np.ndarray  # (n_sites,) uint64 bitmask
    n_detectors: int
    n_observables: int

    @property
    def n_sites(self) -> int:
        return len(self.sites)


def _xor_columns(
    label_flips: dict[str, np.ndarray], labels: list[str], words: int
) -> np.ndarray:
    col = np.zeros(words, dtype=np.uint64)
    for lab in labels:
        try:
            col ^= label_flips[lab]
        except KeyError:
            raise ValueError(f"detector references unknown measurement label {lab!r}") from None
    return col


def extract_fault_table(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    params: NoiseParams,
    detectors: list[list[str]],
    observables: list[list[str]],
) -> FaultTable:
    """Enumerate fault sites and project their flips onto detectors.

    ``detectors[d]`` / ``observables[o]`` are measurement-label sets whose
    XOR parity is deterministic in the noiseless circuit; detector ids in
    the resulting table index these lists.
    """
    sites = enumerate_fault_sites(circuit, initial_occupancy, params)
    label_flips = _propagate_frames(circuit, initial_occupancy, sites)
    n_sites = len(sites)
    words = max(1, -(-n_sites // 64))

    footprints: list[list[int]] = [[] for _ in range(n_sites)]
    for d, labels in enumerate(detectors):
        col = _xor_columns(label_flips, labels, words)
        for s in np.nonzero(unpack_bits(col, n_sites))[0] if n_sites else ():
            footprints[s].append(d)
    obs_mask = np.zeros(n_sites, dtype=np.uint64)
    for o, labels in enumerate(observables):
        col = _xor_columns(label_flips, labels, words)
        if n_sites:
            obs_mask[np.nonzero(unpack_bits(col, n_sites))[0]] |= np.uint64(1 << o)

    return FaultTable(
        sites=sites,
        footprints=[tuple(fp) for fp in footprints],
        observables=obs_mask,
        n_detectors=len(detectors),
        n_observables=len(observables),
    )


@dataclass
class DetectorErrorModel:
    """Deduplicated error mechanisms of a noisy Clifford schedule.

    Mechanism ``m`` fires independently with probability ``probs[m]``,
    flipping the detectors in ``detectors[m]`` (sorted ids) and the
    observables set in bitmask ``observables[m]``.  ``sources`` (when
    extraction kept them) lists the concrete fault sites folded into each
    mechanism — the hook the cross-engine single-fault tests use to inject
    the same physical fault into the packed-tableau engine.
    """

    n_detectors: int
    n_observables: int
    probs: np.ndarray  # (M,) float64
    detectors: list[tuple[int, ...]]
    observables: np.ndarray  # (M,) uint64 bitmask
    sources: list[tuple[FaultSite, ...]] | None = None

    @property
    def n_mechanisms(self) -> int:
        return len(self.detectors)

    def detection_rates(self) -> np.ndarray:
        """Analytic per-detector marginal firing rates under independence.

        Detector ``d`` fires when an odd number of its mechanisms fire:
        ``0.5 * (1 - prod_m (1 - 2 p_m))`` over the mechanisms touching it.
        """
        prod = np.ones(self.n_detectors)
        for p, dets in zip(self.probs, self.detectors):
            for d in dets:
                prod[d] *= 1.0 - 2.0 * p
        return 0.5 * (1.0 - prod)

    def observable_rates(self) -> np.ndarray:
        """Analytic marginal flip rate per observable (raw, undecoded)."""
        prod = np.ones(self.n_observables)
        for p, mask in zip(self.probs, self.observables):
            for o in range(self.n_observables):
                if int(mask) >> o & 1:
                    prod[o] *= 1.0 - 2.0 * p
        return 0.5 * (1.0 - prod)

    def to_dict(self) -> dict:
        """JSON-friendly dump (the ``tiscc dem --json`` artifact)."""
        return {
            "n_detectors": self.n_detectors,
            "n_observables": self.n_observables,
            "n_mechanisms": self.n_mechanisms,
            "mechanisms": [
                {
                    "probability": float(p),
                    "detectors": list(dets),
                    "observables": int(mask),
                }
                for p, dets, mask in zip(self.probs, self.detectors, self.observables)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DetectorErrorModel {self.n_mechanisms} mechanisms over "
            f"{self.n_detectors} detectors / {self.n_observables} observables>"
        )


def build_dem(
    table: FaultTable, params: NoiseParams, keep_sources: bool = False
) -> DetectorErrorModel:
    """Fold a fault table and a parameter set into a deduplicated DEM.

    Sites with zero probability or no effect (empty footprint, no
    observable flip) are dropped; sites with identical (footprint,
    observable) signatures are XOR-combined
    (``p <- p_a (1 - p_b) + p_b (1 - p_a)``), which is exact for
    independent mechanisms.  Mechanisms come back sorted by footprint, so
    extraction is deterministic for a fixed circuit + noise pair.
    """
    groups: dict[tuple[tuple[int, ...], int], list] = {}
    for s, (site, footprint) in enumerate(zip(table.sites, table.footprints)):
        p = site.probability(params)
        if p <= 0.0:
            continue
        obs = int(table.observables[s])
        if not footprint and not obs:
            continue  # invisible fault: flips nothing deterministic
        entry = groups.get((footprint, obs))
        if entry is None:
            groups[(footprint, obs)] = [p, [site]]
        else:
            entry[0] = entry[0] * (1.0 - p) + p * (1.0 - entry[0])
            entry[1].append(site)

    keys = sorted(groups)
    probs = np.array([groups[k][0] for k in keys], dtype=np.float64)
    return DetectorErrorModel(
        n_detectors=table.n_detectors,
        n_observables=table.n_observables,
        probs=probs,
        detectors=[k[0] for k in keys],
        observables=np.array([k[1] for k in keys], dtype=np.uint64),
        sources=[tuple(groups[k][1]) for k in keys] if keep_sources else None,
    )


def extract_dem(
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
    noise: NoiseModel,
    detectors: list[list[str]],
    observables: list[list[str]],
    keep_sources: bool = False,
) -> DetectorErrorModel:
    """One-shot convenience: fault table + DEM for a single noise model.

    Callers sweeping rates should instead cache the
    :func:`extract_fault_table` result per :func:`dem_structure_key` and
    call :func:`build_dem` per parameter set (what
    :meth:`~repro.decode.memory.MemoryExperiment.detector_error_model`
    does).
    """
    table = extract_fault_table(
        circuit, initial_occupancy, noise.params, detectors, observables
    )
    return build_dem(table, noise.params, keep_sources=keep_sources)
