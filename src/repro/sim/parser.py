"""Parser for the TISCC circuit text format.

ORQCS "implements a parser and hardware model for the TISCC instruction set"
(§4); this module is the parser half.  The format, one instruction per line:

    <name> <qsite> [<qsite>] @<start_us> [-> <label>]

Comment lines start with ``#``; blank lines are ignored.  Durations are
re-derived from the gate-time table (moves distinguish zone hops from
junction crossings by grid geometry, which is why parsing needs the grid).
"""

from __future__ import annotations

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager

__all__ = ["parse_circuit", "ParseError"]


class ParseError(ValueError):
    """A circuit text line could not be interpreted."""

    def __init__(self, lineno: int, line: str, reason: str):
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno


def _move_duration(grid: GridManager, src: int, dst: int) -> float:
    if dst in grid.neighbors(src):
        return grid.move_us
    if grid.junction_between(src, dst) is not None:
        return grid.junction_hop_us
    raise ValueError(f"{src} -> {dst} is not a legal hop")


def parse_circuit(text: str, grid: GridManager) -> HardwareCircuit:
    """Parse circuit text back into a :class:`HardwareCircuit`.

    Durations come from the grid's hardware profile, so a circuit written
    under one profile re-parses with the same timings only under a grid
    carrying that profile.
    """
    gate_times = grid.profile.gate_times
    circuit = HardwareCircuit()
    n_measures = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        label = None
        if "->" in line:
            line, _, label_part = line.partition("->")
            label = label_part.strip()
            if not label:
                raise ParseError(lineno, raw, "empty measurement label")
            line = line.strip()
        parts = line.split()
        if len(parts) < 2 or not parts[-1].startswith("@"):
            raise ParseError(lineno, raw, "expected '<name> <sites...> @<t>'")
        name = parts[0]
        try:
            t = float(parts[-1][1:])
        except ValueError:
            raise ParseError(lineno, raw, f"bad timestamp {parts[-1]!r}") from None
        try:
            sites = tuple(int(s) for s in parts[1:-1])
        except ValueError:
            raise ParseError(lineno, raw, "qsites must be integers") from None

        if name == "Move":
            if len(sites) != 2:
                raise ParseError(lineno, raw, "Move takes two qsites")
            try:
                duration = _move_duration(grid, *sites)
            except ValueError as exc:
                raise ParseError(lineno, raw, str(exc)) from None
        elif name == "Load":
            if len(sites) != 1:
                raise ParseError(lineno, raw, "Load takes one qsite")
            duration = 0.0
        elif name == "ZZ":
            if len(sites) != 2:
                raise ParseError(lineno, raw, "ZZ takes two qsites")
            duration = gate_times["ZZ"]
        elif name in gate_times:
            if len(sites) != 1:
                raise ParseError(lineno, raw, f"{name} takes one qsite")
            duration = gate_times[name]
        else:
            raise ParseError(lineno, raw, f"unknown operation {name!r}")

        if label is not None and name != "Measure_Z":
            raise ParseError(lineno, raw, "only Measure_Z carries an outcome label")
        if name == "Measure_Z":
            if label is None:
                label = f"m{n_measures}"
            n_measures += 1
        circuit.append(name, sites, t, duration, label)
    return circuit
