"""Semantics of the native TISCC gate set for both simulator backends.

Maps each native gate name (Table 5 plus signed-angle variants) to its exact
unitary matrix (dense backend) and its tableau update (stabilizer backend).
The convention throughout is ``P_theta = exp(-i * theta * P)``.
"""

from __future__ import annotations

import numpy as np

from repro.sim.tableau import StabilizerTableau

__all__ = [
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "unitary_for",
    "apply_to_tableau",
    "CLIFFORD_GATES",
    "NON_CLIFFORD_GATES",
    "TABLEAU_1Q",
    "rotation_unitary",
]

PAULI_I = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

_AXIS = {"X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


def rotation_unitary(axis: str, theta: float) -> np.ndarray:
    """``exp(-i theta P)`` for a single-qubit Pauli axis."""
    p = _AXIS[axis]
    return np.cos(theta) * PAULI_I - 1j * np.sin(theta) * p


_ANGLES = {
    "pi/2": np.pi / 2,
    "pi/4": np.pi / 4,
    "-pi/4": -np.pi / 4,
    "pi/8": np.pi / 8,
    "-pi/8": -np.pi / 8,
}


def _zz_unitary() -> np.ndarray:
    zz = np.kron(PAULI_Z, PAULI_Z)
    return np.cos(np.pi / 4) * np.eye(4) - 1j * np.sin(np.pi / 4) * zz


_UNITARIES: dict[str, np.ndarray] = {"ZZ": _zz_unitary()}
for _axis in "XYZ":
    for _label, _theta in _ANGLES.items():
        _UNITARIES[f"{_axis}_{_label}"] = rotation_unitary(_axis, _theta)

#: Native gates with a Clifford action (everything except the pi/8 rotations).
CLIFFORD_GATES = frozenset(
    name for name in _UNITARIES if "pi/8" not in name
)
NON_CLIFFORD_GATES = frozenset({"Z_pi/8", "Z_-pi/8"})

# Tableau dispatch: gate name -> tableau method name, shared by the unpacked
# (StabilizerTableau) and packed-batched (PackedTableau) backends, whose gate
# methods are named identically.
TABLEAU_1Q: dict[str, str] = {
    "X_pi/2": "pauli_x",
    "Y_pi/2": "pauli_y",
    "Z_pi/2": "pauli_z",
    "X_pi/4": "sqrt_x",
    "X_-pi/4": "sqrt_x_dag",
    "Y_pi/4": "sqrt_y",
    "Y_-pi/4": "sqrt_y_dag",
    "Z_pi/4": "s",
    "Z_-pi/4": "sdg",
}


def unitary_for(name: str) -> np.ndarray:
    """Exact unitary for a native gate name (2x2 or 4x4)."""
    try:
        return _UNITARIES[name]
    except KeyError:
        raise ValueError(f"no unitary for operation {name!r}") from None


def apply_to_tableau(tab: StabilizerTableau, name: str, qubits: tuple[int, ...]) -> None:
    """Apply a native Clifford gate to the tableau.

    ``Z_pi/8`` / ``Z_-pi/8`` are rejected here — the interpreter routes them
    through the quasi-Clifford sampler (§4.1).
    """
    if name in TABLEAU_1Q:
        (a,) = qubits
        getattr(tab, TABLEAU_1Q[name])(a)
    elif name == "ZZ":
        a, b = qubits
        tab.zz(a, b)
    elif name in NON_CLIFFORD_GATES:
        raise ValueError(f"{name} is non-Clifford; use the quasi-Clifford sampler")
    else:
        raise ValueError(f"unknown gate {name!r}")
