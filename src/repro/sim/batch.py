"""Batched Monte-Carlo shot engine over the packed stabilizer backend.

Replays one compiled :class:`~repro.hardware.circuit.HardwareCircuit` across
a whole batch of shots in single vectorized passes: every instruction is
visited once, acting on all shots at word granularity via
:class:`~repro.sim.packed.PackedTableau`.  Per-shot quasi-probability
T-gate substitutions (§4.1) are drawn for the whole batch up front at each
non-Clifford instruction and applied as masked gate layers; per-shot weights
and per-label outcome bitmaps come back as arrays.

Two randomness modes:

* ``independent_streams=True`` (default) gives shot ``k`` its own
  generator derived via :func:`per_shot_seed` —
  ``np.random.SeedSequence(seed, spawn_key=(shot_offset + k,))``, the
  spawn-key form of ``SeedSequence(seed).spawn(n)[k]`` — consumed in
  instruction order: exactly the stream a single-shot
  :class:`~repro.sim.interpreter.CircuitInterpreter` seeded with that
  SeedSequence would consume, so batched trajectories reproduce looped
  single-shot runs shot-for-shot (outcomes, weights, determinism flags).
  Because the stream depends only on the *absolute* shot index, a run
  split into chunks with matching ``shot_offset`` reproduces the unsplit
  run bit-for-bit (the same contract as
  :class:`~repro.sim.frame.FrameSampler`).
* ``independent_streams=False`` draws every random vector from one shared
  generator — the maximum-throughput mode for logical-error statistics,
  reproducible as a batch but not relatable to single-shot replays.

Noisy sampling: pass a :class:`~repro.sim.noise.NoiseModel` and its
hardware-calibrated Pauli channels are injected as vectorized masked Pauli
layers after each instruction (plus idle-gap dephasing before, and readout
flips on measurement records).  Noise randomness comes from a dedicated
generator (``noise_seed``), so the ideal trajectory of every shot is
unchanged by the presence of a trivial (all-zero-rate) model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.code.pauli import PauliString
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.sim.gates import NON_CLIFFORD_GATES
from repro.sim.interpreter import (
    RunResult,
    apply_load,
    apply_move,
    init_run_state,
    resolve_qubits,
)
from repro.sim.noise import IdleClock, NoiseModel
from repro.sim.packed import PackedTableau, apply_packed
from repro.sim.quasi import QuasiCliffordSampler

__all__ = ["BatchRunner", "BatchResult", "PauliInjection", "per_shot_seed"]

#: Offset mixed into ``seed`` for the dedicated noise stream when no explicit
#: ``noise_seed`` is given (an arbitrary large odd constant).
_NOISE_SEED_OFFSET = 0x9E3779B1


def per_shot_seed(seed: int | None, shot: int) -> np.random.SeedSequence | None:
    """Seed for the independent stream of absolute shot index ``shot``.

    The single source of truth for per-shot randomness, shared by
    :class:`BatchRunner` and :class:`~repro.sim.frame.FrameSampler`:
    ``SeedSequence(seed, spawn_key=(shot,))`` is exactly the ``shot``-th
    child ``SeedSequence(seed).spawn()`` would produce, but addressable by
    absolute index — which is what makes chunked runs reproduce unchunked
    ones.  ``None`` (no seed) stays ``None``: fresh OS entropy per shot.
    """
    if seed is None:
        return None
    return np.random.SeedSequence(seed, spawn_key=(shot,))


@dataclass(frozen=True)
class PauliInjection:
    """A deterministic Pauli inserted into the replay at a fixed location.

    ``index`` addresses ``circuit.sorted_instructions()``; the Pauli given
    by ``ops`` (``(tableau qubit, letter)`` pairs) is applied ``when`` =
    ``"before"`` or ``"after"`` that instruction executes, to every shot
    (``shot=None``) or one batch lane.  This is the cross-engine test hook:
    a :class:`~repro.sim.dem.FaultSite`'s Pauli injected here must flip
    exactly the detectors and observables its DEM mechanism predicts.
    """

    index: int
    when: str = "after"
    ops: tuple[tuple[int, str], ...] = ()
    shot: int | None = None

    def __post_init__(self) -> None:
        if self.when not in ("before", "after"):
            raise ValueError(f"injection 'when' must be before/after, got {self.when!r}")
        for _, letter in self.ops:
            if letter not in ("X", "Y", "Z"):
                raise ValueError(f"injection Pauli letter must be X/Y/Z, got {letter!r}")


@dataclass
class BatchResult:
    """Outcome of replaying one circuit across a batch of Monte-Carlo shots.

    The array-valued mirror of :class:`~repro.sim.interpreter.RunResult`:
    ``outcomes[label]`` is a ``(n_shots,)`` 0/1 bitmap, ``deterministic``
    the matching determinism flags, ``weights`` the quasi-probability shot
    weights.  ``sign``/``expectation`` return per-shot arrays, which makes
    the compiler's ``InstructionResult.value`` callables (products of signs)
    evaluate vectorized over the whole batch unchanged.
    """

    tableau: PackedTableau
    ion_index: dict[int, int]
    occupancy: dict[int, int]
    outcomes: dict[str, np.ndarray]
    deterministic: dict[str, np.ndarray]
    weights: np.ndarray

    @property
    def n_shots(self) -> int:
        return self.tableau.batch

    def qubit_of_site(self, site: int) -> int:
        """Tableau qubit currently held at a qsite (shared across shots)."""
        ion = self.occupancy.get(site)
        if ion is None:
            raise KeyError(f"no ion at qsite {site} at end of circuit")
        return self.ion_index[ion]

    def sign(self, label: str) -> np.ndarray:
        """Measurement outcomes as +/-1 eigenvalue signs, one per shot."""
        return 1 - 2 * self.outcomes[label].astype(np.int64)

    def expectation(self, pauli_over_sites: PauliString) -> np.ndarray:
        """Per-shot <P> for a Pauli string keyed by qsites (end occupancy)."""
        index_of = {
            site: self.qubit_of_site(site) for site in pauli_over_sites.support
        }
        return self.tableau.expectation(pauli_over_sites, index_of)

    def expectation_over_ions(self, pauli_over_ions: PauliString) -> np.ndarray:
        index_of = {ion: self.ion_index[ion] for ion in pauli_over_ions.support}
        return self.tableau.expectation(pauli_over_ions, index_of)

    def estimate(self, values: PauliString | np.ndarray) -> tuple[float, float]:
        """Weighted Monte-Carlo mean and standard error over the batch.

        ``values`` is either a Pauli string over qsites (its per-shot
        expectations are taken) or a precomputed per-shot value array; the
        quasi-probability estimator is ``E[weight * value]`` (§4.1).
        """
        if isinstance(values, PauliString):
            values = self.expectation(values)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.weights.shape:
            raise ValueError(f"need one value per shot, got shape {values.shape}")
        if self.n_shots < 2:
            raise ValueError("need at least two shots for an error estimate")
        samples = self.weights * values
        return float(samples.mean()), float(samples.std(ddof=1) / np.sqrt(self.n_shots))

    def shot(self, k: int) -> RunResult:
        """Materialize shot ``k`` as a single-shot :class:`RunResult`."""
        return RunResult(
            tableau=self.tableau.to_tableau(k),
            ion_index=dict(self.ion_index),
            occupancy=dict(self.occupancy),
            outcomes={label: int(arr[k]) for label, arr in self.outcomes.items()},
            deterministic={label: bool(arr[k]) for label, arr in self.deterministic.items()},
            weight=float(self.weights[k]),
        )


class BatchRunner:
    """Executes hardware circuits against a batch of packed tableaux."""

    def __init__(self, grid: GridManager):
        self.grid = grid
        self.sampler = QuasiCliffordSampler()

    def run_shots(
        self,
        circuit: HardwareCircuit,
        initial_occupancy: dict[int, int],
        n_shots: int,
        seed: int | None = 0,
        forced_outcomes: dict | None = None,
        independent_streams: bool = True,
        noise: NoiseModel | None = None,
        noise_seed: int | None = None,
        shot_offset: int = 0,
        injections: list[PauliInjection] | None = None,
    ) -> BatchResult:
        """Replay ``circuit`` from a site -> ion occupancy map, ``n_shots`` at once.

        ``forced_outcomes`` pins measurement labels (scalar or per-shot
        arrays).  With ``independent_streams`` (default) shot ``k``
        consumes ``default_rng(per_shot_seed(seed, shot_offset + k))``
        exactly like a ``CircuitInterpreter`` seeded with that
        SeedSequence would; with it off, one shared ``default_rng(seed)``
        draws every random vector (fastest; ``shot_offset`` is then
        irrelevant to the draws).

        ``noise`` injects that model's Pauli channels around every
        instruction, drawing from a dedicated ``default_rng(noise_seed)``
        stream (derived from ``seed`` when unset) so ideal trajectories
        are reproducible independent of the noise draws.  ``injections``
        adds deterministic :class:`PauliInjection` faults at fixed
        instruction positions (the DEM cross-engine test hook).
        """
        if n_shots < 1:
            raise ValueError("need at least one shot")
        forced = forced_outcomes or {}
        pending_injections: dict[tuple[int, str], list[PauliInjection]] = {}
        for inj in injections or ():
            pending_injections.setdefault((inj.index, inj.when), []).append(inj)
        occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
        tableau = PackedTableau(n_qubits, batch=n_shots)
        weights = np.ones(n_shots)
        outcomes: dict[str, np.ndarray] = {}
        deterministic: dict[str, np.ndarray] = {}

        noise_rng: np.random.Generator | None = None
        idle: IdleClock | None = None
        if noise is not None and not noise.is_trivial:
            if noise_seed is None and seed is not None:
                noise_seed = seed + _NOISE_SEED_OFFSET
            noise_rng = np.random.default_rng(noise_seed)
            idle = noise.idle_clock(n_qubits)

        if independent_streams:
            rngs = [
                np.random.default_rng(per_shot_seed(seed, shot_offset + k))
                for k in range(n_shots)
            ]
            measure_rng: object = rngs
        else:
            shared = np.random.default_rng(seed)
            measure_rng = shared

        cols = circuit.sorted_columns()
        names, sites_of, labels = cols.names, cols.sites, cols.labels
        starts = cols.t.tolist()
        ends = cols.t_end.tolist()
        durations = cols.duration.tolist()
        for entries in pending_injections.values():
            for inj in entries:
                if not 0 <= inj.index < cols.n:
                    raise ValueError(
                        f"injection index {inj.index} outside circuit of {cols.n}"
                    )
                if inj.shot is not None and not 0 <= inj.shot < n_shots:
                    raise ValueError(
                        f"injection shot {inj.shot} outside batch of {n_shots}"
                    )
        for idx in range(cols.n):
            name = names[idx]
            sites = sites_of[idx]
            qubits = resolve_qubits(name, sites, occupancy, ion_index)

            for inj in pending_injections.get((idx, "before"), ()):
                self._inject(tableau, inj)

            if idle is not None and noise_rng is not None:
                for q in qubits:
                    gap = idle.gap_before(q, starts[idx])
                    if gap > 0:
                        noise.apply_idle_dephasing(tableau, q, gap, noise_rng)

            if name == "Load":
                apply_load(sites[0], occupancy, ion_index, tableau.n)
            elif name == "Move":
                apply_move(sites[0], sites[1], occupancy)
            elif name == "Prepare_Z":
                tableau.reset(qubits[0], measure_rng)
            elif name == "Measure_Z":
                label = labels.get(idx) or f"m?{idx}"
                out, det = tableau.measure(
                    qubits[0], measure_rng, forced=forced.get(label)
                )
                if noise_rng is not None and label not in forced:
                    # Pinned labels stay pinned: readout flips never override
                    # a forced_outcomes entry.
                    out = noise.flip_outcomes(out, noise_rng)
                outcomes[label] = out
                deterministic[label] = det
            elif name in NON_CLIFFORD_GATES:
                if independent_streams:
                    drawn = [self.sampler.sample(name, rngs[k]) for k in range(n_shots)]
                    gates = [g for g, _ in drawn]
                    weights *= np.array([w for _, w in drawn])
                else:
                    gates, factors = self.sampler.sample_batch(name, shared, n_shots)
                    weights *= factors
                self._apply_substitutes(tableau, gates, tuple(qubits))
            else:
                apply_packed(tableau, name, tuple(qubits))

            for inj in pending_injections.get((idx, "after"), ()):
                self._inject(tableau, inj)

            if noise_rng is not None and qubits:
                noise.apply_operation_noise(tableau, name, durations[idx], qubits, noise_rng)
                if idle is not None:
                    idle.mark_busy(qubits, ends[idx])

        return BatchResult(
            tableau=tableau,
            ion_index=ion_index,
            occupancy=occupancy,
            outcomes=outcomes,
            deterministic=deterministic,
            weights=weights,
        )

    @staticmethod
    def _inject(tableau: PackedTableau, inj: PauliInjection) -> None:
        """Apply one deterministic Pauli injection (whole batch or one lane)."""
        mask = None
        if inj.shot is not None:
            mask = np.zeros(tableau.batch, dtype=bool)
            mask[inj.shot] = True
        for q, letter in inj.ops:
            apply = {"X": tableau.pauli_x, "Y": tableau.pauli_y, "Z": tableau.pauli_z}[letter]
            apply(q, mask=mask)

    @staticmethod
    def _apply_substitutes(
        tableau: PackedTableau, gates: list[str | None], qubits: tuple[int, ...]
    ) -> None:
        """Apply per-shot Clifford substitutes as masked gate layers."""
        per_shot = np.array(["" if g is None else g for g in gates])
        for gate in np.unique(per_shot):
            if gate == "":
                continue  # identity substitute
            mask = per_shot == gate
            apply_packed(
                tableau, str(gate), qubits, mask=None if mask.all() else mask
            )
