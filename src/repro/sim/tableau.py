"""Vectorized Aaronson-Gottesman stabilizer tableau.

Rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers; each row represents
``(-1)^r prod_j X^{x_j} Z^{z_j}`` (so a ``Y`` is ``x=z=1`` carrying an
implicit ``i`` absorbed into the convention; see :meth:`row_pauli` for the
conversion back to :class:`~repro.code.pauli.PauliString` phases).

Updates are vectorized over all 2n rows with NumPy (per the hpc-parallel
guide: vectorize the hot loops), which keeps a d=30 patch — ~1800 ions,
3600x1800 tableau — comfortably simulable.
"""

from __future__ import annotations

import numpy as np

from repro.code.pauli import PauliString

__all__ = ["StabilizerTableau"]


def _g_values(x1, z1, x2, z2):
    """Per-qubit i-exponents g for left-multiplying row (x1,z1) onto (x2,z2).

    Inputs are int arrays (broadcastable); the Aaronson-Gottesman g-function,
    shared by the rowsum and the scratch-row product accumulation.
    """
    return np.where(
        (x1 == 1) & (z1 == 1),
        z2 - x2,
        np.where(
            (x1 == 1) & (z1 == 0),
            z2 * (2 * x2 - 1),
            np.where((x1 == 0) & (z1 == 1), x2 * (1 - 2 * z2), 0),
        ),
    )


class StabilizerTableau:
    """n-qubit stabilizer state, initialized to |0...0>."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one qubit")
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        idx = np.arange(n)
        self.x[idx, idx] = 1  # destabilizer i = X_i
        self.z[n + idx, idx] = 1  # stabilizer i = Z_i

    def copy(self) -> "StabilizerTableau":
        t = StabilizerTableau.__new__(StabilizerTableau)
        t.n = self.n
        t.x = self.x.copy()
        t.z = self.z.copy()
        t.r = self.r.copy()
        return t

    # ----------------------------------------------------------- 1q gates
    def h(self, a: int) -> None:
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= x & z
        x_old = x.copy()
        self.x[:, a] = z
        self.z[:, a] = x_old

    def s(self, a: int) -> None:
        """Phase gate S ~ Z_{pi/4}: X -> Y, Y -> -X."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= x & z
        self.z[:, a] ^= x

    def sdg(self, a: int) -> None:
        """S-dagger ~ Z_{-pi/4}: X -> -Y, Y -> X."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= x & (z ^ 1)
        self.z[:, a] ^= x

    def pauli_x(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def pauli_y(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def pauli_z(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def sqrt_x(self, a: int) -> None:
        """X_{pi/4} = e^{-i pi/4 X}: Z -> -Y, Y -> Z."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= (x ^ 1) & z
        self.x[:, a] ^= z

    def sqrt_x_dag(self, a: int) -> None:
        """X_{-pi/4}: Z -> Y, Y -> -Z."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= x & z
        self.x[:, a] ^= z

    def sqrt_y(self, a: int) -> None:
        """Y_{pi/4} = e^{-i pi/4 Y}: X -> -Z, Z -> X."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= x & (z ^ 1)
        x_old = x.copy()
        self.x[:, a] = z
        self.z[:, a] = x_old

    def sqrt_y_dag(self, a: int) -> None:
        """Y_{-pi/4}: X -> Z, Z -> -X."""
        x, z = self.x[:, a], self.z[:, a]
        self.r ^= (x ^ 1) & z
        x_old = x.copy()
        self.x[:, a] = z
        self.z[:, a] = x_old

    # ----------------------------------------------------------- 2q gates
    def cnot(self, c: int, t: int) -> None:
        xc, zc = self.x[:, c], self.z[:, c]
        xt, zt = self.x[:, t], self.z[:, t]
        self.r ^= xc & zt & (xt ^ zc ^ 1)
        self.x[:, t] ^= xc
        self.z[:, c] ^= zt

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cnot(a, b)
        self.h(b)

    def zz(self, a: int, b: int) -> None:
        """Native entangler (ZZ)_{pi/4} = (S (x) S) . CZ up to global phase."""
        self.cz(a, b)
        self.s(a)
        self.s(b)

    # --------------------------------------------------------------- rowsum
    def _rowsum_rows(self, hs: np.ndarray, i: int) -> None:
        """R_h := R_i * R_h (left-multiplication) for every row index in hs."""
        x1 = self.x[i].astype(np.int16)
        z1 = self.z[i].astype(np.int16)
        x2 = self.x[hs].astype(np.int16)
        z2 = self.z[hs].astype(np.int16)
        g = _g_values(x1, z1, x2, z2)
        total = 2 * self.r[hs].astype(np.int64) + 2 * int(self.r[i]) + g.sum(axis=1)
        self.r[hs] = ((total % 4) // 2).astype(np.uint8)
        self.x[hs] ^= self.x[i]
        self.z[hs] ^= self.z[i]

    def _product_of_rows(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Identity scratch row left-multiplied by each row in ``rows``, in order.

        Vectorized over all rows at once (same g-function as the rowsum): the
        scratch state before step j is the prefix XOR of rows[:j], and since
        every intermediate product carries a real (+/-) phase the step-wise
        mod-4 floors commute with summing, so one 2-D g evaluation suffices.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            zeros = np.zeros(self.n, dtype=np.uint8)
            return zeros, zeros.copy(), 0
        x1 = self.x[rows]
        z1 = self.z[rows]
        cx = np.bitwise_xor.accumulate(x1, axis=0)
        cz = np.bitwise_xor.accumulate(z1, axis=0)
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        x2[1:] = cx[:-1]
        z2[1:] = cz[:-1]
        g = _g_values(
            x1.astype(np.int16), z1.astype(np.int16),
            x2.astype(np.int16), z2.astype(np.int16),
        )
        total = 2 * int(self.r[rows].sum()) + int(g.sum())
        return cx[-1], cz[-1], (total % 4) // 2

    # ---------------------------------------------------------- measurement
    def measure(
        self,
        a: int,
        rng: np.random.Generator | None = None,
        forced: int | None = None,
    ) -> tuple[int, bool]:
        """Measure Z on qubit ``a``.

        Returns ``(outcome, deterministic)``.  Random outcomes are drawn from
        ``rng`` unless ``forced`` pins them (used to replay a trajectory on
        two backends).  Forcing a deterministic outcome to the wrong value
        raises.
        """
        stab_hits = np.nonzero(self.x[self.n :, a])[0]
        if stab_hits.size:
            p = self.n + int(stab_hits[0])
            rows = np.nonzero(self.x[:, a])[0]
            rows = rows[rows != p]
            if rows.size:
                self._rowsum_rows(rows, p)
            self.x[p - self.n] = self.x[p]
            self.z[p - self.n] = self.z[p]
            self.r[p - self.n] = self.r[p]
            if forced is not None:
                outcome = int(forced)
            else:
                if rng is None:
                    raise ValueError("random measurement outcome requires an rng")
                outcome = int(rng.integers(2))
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, a] = 1
            self.r[p] = outcome
            return outcome, False

        _, _, rs = self._product_of_rows(self.n + np.nonzero(self.x[: self.n, a])[0])
        outcome = int(rs)
        if forced is not None and int(forced) != outcome:
            raise ValueError(
                f"forced outcome {forced} contradicts deterministic outcome {outcome}"
            )
        return outcome, True

    def reset(self, a: int, rng: np.random.Generator | None = None) -> None:
        """Prepare_Z: project qubit ``a`` to |0>."""
        outcome, _ = self.measure(a, rng, forced=0 if rng is None else None)
        if outcome == 1:
            self.pauli_x(a)

    # --------------------------------------------------------- expectations
    def _pauli_bits(
        self, pauli: PauliString, index_of: dict | None = None
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Convert a Hermitian PauliString to (x, z, r) row representation."""
        if not pauli.is_hermitian:
            raise ValueError("expectation values need Hermitian Pauli strings")
        xp = np.zeros(self.n, dtype=np.uint8)
        zp = np.zeros(self.n, dtype=np.uint8)
        for key, p in pauli.ops.items():
            q = key if index_of is None else index_of[key]
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {key!r} -> {q} outside tableau")
            if p in ("X", "Y"):
                xp[q] = 1
            if p in ("Z", "Y"):
                zp[q] = 1
        # Tableau rows represent (-1)^r * prod {I,X,Y,Z} with Y for x=z=1
        # directly (the Aaronson-Gottesman convention; the i bookkeeping of
        # Y = iXZ lives inside the rowsum g-function), so the sign bit is
        # just the i-power halved.
        r = (pauli.phase % 4) // 2
        return xp, zp, r

    def commutes(self, pauli: PauliString, index_of: dict | None = None) -> bool:
        xp, zp, _ = self._pauli_bits(pauli, index_of)
        sym = (self.x[self.n :] @ zp + self.z[self.n :] @ xp) % 2
        return not sym.any()

    def expectation(self, pauli: PauliString, index_of: dict | None = None) -> int:
        """<P> for the current stabilizer state: one of -1, 0, +1 (exact)."""
        xp, zp, rp = self._pauli_bits(pauli, index_of)
        sym_stab = (
            self.x[self.n :] @ zp.astype(np.int64) + self.z[self.n :] @ xp.astype(np.int64)
        ) % 2
        if sym_stab.any():
            return 0
        # P is in the stabilizer group (full tableau => centralizer = group).
        # Generator k participates iff P anticommutes with destabilizer k.
        sym_destab = (
            self.x[: self.n] @ zp.astype(np.int64) + self.z[: self.n] @ xp.astype(np.int64)
        ) % 2
        xs, zs, rs = self._product_of_rows(self.n + np.nonzero(sym_destab)[0])
        if not (np.array_equal(xs, xp) and np.array_equal(zs, zp)):
            raise AssertionError("internal error: commuting Pauli not in stabilizer group")
        return 1 if rs == rp else -1

    # ------------------------------------------------------------ generators
    def row_pauli(self, row: int, keys: list | None = None) -> PauliString:
        """Row as a PauliString (keys default to qubit indices)."""
        ops = {}
        for q in range(self.n):
            xb, zb = int(self.x[row, q]), int(self.z[row, q])
            if xb or zb:
                key = q if keys is None else keys[q]
                ops[key] = "Y" if (xb and zb) else ("X" if xb else "Z")
        phase = (2 * int(self.r[row])) % 4
        return PauliString(ops, phase)

    def stabilizer_generators(self, keys: list | None = None) -> list[PauliString]:
        """Current stabilizer generators (§4.3 layer-by-layer verification)."""
        return [self.row_pauli(self.n + i, keys) for i in range(self.n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StabilizerTableau n={self.n}>"
