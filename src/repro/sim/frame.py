"""Vectorized Pauli-frame sampling over a detector error model.

The fast half of the Stim-style sampling path: once
:mod:`repro.sim.dem` has folded a compiled circuit + noise model into a
:class:`~repro.sim.dem.DetectorErrorModel`, sampling needs *no quantum
state at all* — each shot independently fires each mechanism with its
probability, and detection events / observable flips are XOR parities of
the fired mechanisms' footprints.  :class:`FrameSampler` draws whole
batches at once: per-shot Bernoulli vectors are bit-packed along the shot
axis and each detector's column is one ``bitwise_xor.reduce`` over the
mechanisms that touch it.

Seed plumbing (shared contract with :class:`~repro.sim.batch.BatchRunner`):
shot ``k`` of a run with ``seed`` consumes its own generator derived via
``np.random.SeedSequence(seed, spawn_key=(shot_offset + k,))`` — the
spawn-key form of ``SeedSequence(seed).spawn(n)[k]`` (see
:func:`repro.sim.batch.per_shot_seed`).  Because the stream depends only on
the *absolute* shot index, sampling 10 000 shots in one call or in any
chunking of calls with matching ``shot_offset`` yields bit-identical
results — the property ``tests/test_frame_sampler.py`` locks down and
:func:`~repro.estimator.sweep.logical_error_sweep` relies on for
``max_batch`` chunking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.batch import per_shot_seed
from repro.sim.dem import DetectorErrorModel

__all__ = ["FrameSampler", "FrameSamples"]


@dataclass
class FrameSamples:
    """One batch of frame-sampled outcomes.

    ``detectors`` is the ``(n_shots, n_detectors)`` 0/1 detection-event
    matrix (the layout :meth:`MemoryExperiment.syndromes` produces and the
    union-find decoder consumes); ``observables`` the ``(n_shots,
    n_observables)`` logical-flip matrix.
    """

    detectors: np.ndarray
    observables: np.ndarray

    @property
    def n_shots(self) -> int:
        return self.detectors.shape[0]


class FrameSampler:
    """Samples detection events and observable flips from a DEM.

    Construction precomputes, for every detector and observable, the index
    array of mechanisms touching it; :meth:`sample` then costs one uniform
    vector per shot plus bit-packed XOR reductions — no tableau, no gate
    dispatch, no per-instruction work.
    """

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem
        # One flat (detector, mechanism) incidence pass + a stable argsort
        # replaces the per-mechanism append loop; the stable kind keeps
        # mechanism ids ascending within each detector, exactly as appends
        # in mechanism order produced.
        n_mechs = dem.n_mechanisms
        lengths = np.fromiter(
            (len(dets) for dets in dem.detectors), dtype=np.int64, count=n_mechs
        )
        flat_det = np.fromiter(
            (d for dets in dem.detectors for d in dets),
            dtype=np.intp,
            count=int(lengths.sum()),
        )
        flat_mech = np.repeat(np.arange(n_mechs, dtype=np.intp), lengths)
        order = np.argsort(flat_det, kind="stable")
        sorted_mech = flat_mech[order]
        bounds = np.searchsorted(flat_det[order], np.arange(dem.n_detectors + 1))
        self._det_mechs = [
            sorted_mech[bounds[d] : bounds[d + 1]] for d in range(dem.n_detectors)
        ]
        masks = np.asarray(dem.observables, dtype=np.uint64)
        self._obs_mechs = [
            np.nonzero((masks >> np.uint64(o)) & np.uint64(1))[0].astype(np.intp)
            for o in range(dem.n_observables)
        ]

    def sample(
        self,
        n_shots: int,
        seed: int | None = 0,
        shot_offset: int = 0,
        chunk: int = 2048,
    ) -> FrameSamples:
        """Draw ``n_shots`` shots of detection events and observable flips.

        Shot ``k`` uses the per-shot stream of absolute index
        ``shot_offset + k`` (see module docstring), so results are
        independent of how a run is split across calls.  ``seed=None``
        draws fresh OS entropy per shot (non-reproducible).  ``chunk``
        bounds the transient ``(chunk, n_mechanisms)`` Bernoulli matrix.
        """
        if n_shots < 1:
            raise ValueError("need at least one shot")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        dem = self.dem
        dets = np.zeros((n_shots, dem.n_detectors), dtype=np.uint8)
        obs = np.zeros((n_shots, dem.n_observables), dtype=np.uint8)
        if dem.n_mechanisms == 0:
            return FrameSamples(detectors=dets, observables=obs)

        probs = dem.probs
        m = dem.n_mechanisms
        for base in range(0, n_shots, chunk):
            size = min(chunk, n_shots - base)
            fired = np.empty((size, m), dtype=bool)
            for k in range(size):
                rng = np.random.default_rng(per_shot_seed(seed, shot_offset + base + k))
                fired[k] = rng.random(m) < probs
            # Bit-pack the shot axis: mechanism columns become uint8 words,
            # and every detector is one XOR reduction over its mechanisms.
            packed = np.packbits(fired, axis=0, bitorder="little")
            for d, mechs in enumerate(self._det_mechs):
                if mechs.size:
                    col = np.bitwise_xor.reduce(packed[:, mechs], axis=1)
                    dets[base : base + size, d] = np.unpackbits(
                        col, count=size, bitorder="little"
                    )
            for o, mechs in enumerate(self._obs_mechs):
                if mechs.size:
                    col = np.bitwise_xor.reduce(packed[:, mechs], axis=1)
                    obs[base : base + size, o] = np.unpackbits(
                        col, count=size, bitorder="little"
                    )
        return FrameSamples(detectors=dets, observables=obs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FrameSampler over {self.dem!r}>"
