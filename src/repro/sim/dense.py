"""Exact dense statevector simulator.

Used as the reference backend: the stabilizer tableau is validated against it
on random Clifford circuits, and gate decompositions in the hardware model
are checked as exact unitaries.  Practical up to ~14 qubits.
"""

from __future__ import annotations

import numpy as np

from repro.code.pauli import PauliString
from repro.sim.gates import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z, unitary_for

__all__ = ["DenseSimulator"]

_PAULI_MAT = {"I": PAULI_I, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


class DenseSimulator:
    """n-qubit statevector, initialized to |0...0>.

    Qubit 0 is the most significant bit of the computational-basis index.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one qubit")
        if n > 16:
            raise ValueError("dense simulation beyond 16 qubits is not sensible")
        self.n = n
        self.state = np.zeros(2**n, dtype=complex)
        self.state[0] = 1.0

    # ------------------------------------------------------------- applying
    def apply_matrix(self, u: np.ndarray, qubits: tuple[int, ...]) -> None:
        k = len(qubits)
        if u.shape != (2**k, 2**k):
            raise ValueError(f"matrix shape {u.shape} does not match {k} qubits")
        psi = self.state.reshape((2,) * self.n)
        psi = np.moveaxis(psi, qubits, range(k))
        shape = psi.shape
        psi = u @ psi.reshape(2**k, -1)
        psi = np.moveaxis(psi.reshape(shape), range(k), qubits)
        self.state = np.ascontiguousarray(psi).reshape(-1)

    def apply(self, name: str, qubits: tuple[int, ...]) -> None:
        self.apply_matrix(unitary_for(name), qubits)

    # ---------------------------------------------------------- measurement
    def _prob_one(self, q: int) -> float:
        psi = self.state.reshape((2,) * self.n)
        sl = [slice(None)] * self.n
        sl[q] = 1
        return float(np.sum(np.abs(psi[tuple(sl)]) ** 2))

    def measure(
        self,
        q: int,
        rng: np.random.Generator | None = None,
        forced: int | None = None,
    ) -> tuple[int, bool]:
        """Projective Z measurement; returns (outcome, deterministic)."""
        p1 = self._prob_one(q)
        deterministic = p1 < 1e-12 or p1 > 1 - 1e-12
        if forced is not None:
            outcome = int(forced)
            prob = p1 if outcome else 1 - p1
            if prob < 1e-12:
                raise ValueError(f"forced outcome {forced} has zero probability")
        elif deterministic:
            outcome = int(p1 > 0.5)
        else:
            if rng is None:
                raise ValueError("random measurement outcome requires an rng")
            outcome = int(rng.random() < p1)
        psi = self.state.reshape((2,) * self.n).copy()
        sl = [slice(None)] * self.n
        sl[q] = 1 - outcome
        psi[tuple(sl)] = 0.0
        norm = np.linalg.norm(psi)
        self.state = (psi / norm).reshape(-1)
        return outcome, deterministic

    def reset(self, q: int, rng: np.random.Generator | None = None) -> None:
        outcome, deterministic = self.measure(q, rng, forced=None if rng else 0)
        if outcome == 1:
            self.apply_matrix(PAULI_X, (q,))

    # --------------------------------------------------------- expectations
    def expectation(self, pauli: PauliString, index_of: dict | None = None) -> float:
        """<psi| P |psi> including the string's i-phase (real for Hermitian P)."""
        psi = self.state
        phi = psi.copy()
        for key, p in pauli.ops.items():
            q = key if index_of is None else index_of[key]
            phi = self._apply_to(phi, _PAULI_MAT[p], q)
        val = np.vdot(psi, phi) * pauli.sign
        if abs(val.imag) > 1e-9:
            raise ValueError(f"non-real expectation {val} — Pauli not Hermitian?")
        return float(val.real)

    def _apply_to(self, state: np.ndarray, u: np.ndarray, q: int) -> np.ndarray:
        psi = state.reshape((2,) * self.n)
        psi = np.moveaxis(psi, q, 0)
        shape = psi.shape
        psi = (u @ psi.reshape(2, -1)).reshape(shape)
        return np.ascontiguousarray(np.moveaxis(psi, 0, q)).reshape(-1)

    def density_matrix(self, qubits: tuple[int, ...]) -> np.ndarray:
        """Reduced density matrix on ``qubits`` (partial trace of the rest)."""
        psi = self.state.reshape((2,) * self.n)
        keep = list(qubits)
        rest = [q for q in range(self.n) if q not in keep]
        psi = np.transpose(psi, keep + rest).reshape(2 ** len(keep), -1)
        return psi @ psi.conj().T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DenseSimulator n={self.n}>"
