"""Bit-packed, batch-parallel stabilizer tableau.

Stores ``B`` independent Aaronson-Gottesman tableaux with the x/z bit
matrices packed 64 qubits per ``uint64`` word and a leading batch axis:
``x`` and ``z`` have shape ``(batch, 2n, ceil(n/64))``, the sign vector
``r`` has shape ``(batch, 2n)``.  Every update — gates, rowsum, measurement,
expectation — is vectorized over the whole batch, per the hpc-parallel
guidance of the seed tableau taken one level further: instead of one byte
per Pauli bit, 64 qubits per machine word.

Two access granularities share the same storage:

* Gates touch a single qubit column, so they go through a ``uint8`` view of
  the words (``_x8``/``_z8``) and read/write only the one byte per row that
  holds the target bit — 8x less memory traffic than whole-word slicing,
  which is what makes the batched gate layer fast.  ``cz``/``zz`` use native
  one-pass update rules (verified against the seed's gate compositions)
  rather than the H-conjugation composition.
* Rowsum phase accumulation works on whole words with the bit-sliced trick
  of packed stabilizer simulators: the per-qubit i-exponent ``g`` of a row
  product lies in ``{0, 1, -1}`` (mod 4: ``{0, 1, 3}``), so its low bit and
  its "negative" bit form two planes and the mod-4 total is
  ``popcount(plane0) + 2 * popcount(plane1)`` (see :func:`_phase_planes`,
  verified exhaustively against the seed tableau's g-function).

Batch lane ``b`` evolves exactly like one
:class:`~repro.sim.tableau.StabilizerTableau` replay.  Every gate accepts an
optional boolean ``mask`` over the batch so per-shot quasi-Clifford
substitutions (§4.1) can be applied as masked gate layers, and
``measure``/``reset`` accept either one shared generator or a sequence of
per-shot generators (to reproduce single-shot trajectories bit-for-bit).
"""

from __future__ import annotations

import sys
from typing import Sequence

import numpy as np

from repro.code.pauli import PauliString
from repro.sim.gates import NON_CLIFFORD_GATES, TABLEAU_1Q
from repro.sim.tableau import StabilizerTableau

__all__ = ["PackedTableau", "apply_packed", "pack_bits", "unpack_bits"]

_ONE = np.uint64(1)
_U8_ONE = np.uint8(1)

if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - numpy < 2.0 fallback
    _POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

    def _popcount(a: np.ndarray) -> np.ndarray:
        return _POP8[a.reshape(a.shape + (1,)).view(np.uint8)].sum(axis=-1, dtype=np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., n)`` 0/1 array into ``(..., ceil(n/64))`` uint64 words.

    Bit ``k`` of word ``w`` holds column ``64*w + k``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.shape[-1]
    words = max(1, -(-n // 64))
    padded = np.zeros(bits.shape[:-1] + (words * 64,), dtype=np.uint8)
    padded[..., :n] = bits
    packed = np.ascontiguousarray(np.packbits(padded, axis=-1, bitorder="little"))
    out = packed.view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        out = out.byteswap()
    return out


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., W)`` words back to ``(..., n)`` bits."""
    w = np.ascontiguousarray(words)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        w = w.byteswap()
    bits = np.unpackbits(w.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :n]


def _phase_planes(x1, z1, x2, z2):
    """Bit planes of the rowsum g-exponent for (x1,z1) left-multiplied onto (x2,z2).

    Returns ``(e0, eneg)`` with per-qubit g mod 4 = ``e0 + 2*eneg``.
    """
    a = x1 & z2
    b = z1 & x2
    e0 = a ^ b
    eneg = e0 & ((a & ~(x2 | z1)) | (b & (x1 | z2)))
    return e0, eneg


class PackedTableau:
    """A batch of n-qubit stabilizer states, all initialized to |0...0>."""

    def __init__(self, n: int, batch: int = 1):
        if n < 1:
            raise ValueError("need at least one qubit")
        if batch < 1:
            raise ValueError("need at least one shot in the batch")
        self.n = n
        self.batch = batch
        self.words = -(-n // 64)
        self.x = np.zeros((batch, 2 * n, self.words), dtype=np.uint64)
        self.z = np.zeros((batch, 2 * n, self.words), dtype=np.uint64)
        self.r = np.zeros((batch, 2 * n), dtype=np.uint8)
        idx = np.arange(n)
        bit = _ONE << (idx % 64).astype(np.uint64)
        self.x[:, idx, idx // 64] = bit  # destabilizer i = X_i
        self.z[:, n + idx, idx // 64] = bit  # stabilizer i = Z_i
        self._make_views()

    def _make_views(self) -> None:
        # Byte-granular aliases of the same storage, used by the gate layer.
        self._x8 = self.x.view(np.uint8)
        self._z8 = self.z.view(np.uint8)

    def copy(self) -> "PackedTableau":
        t = PackedTableau.__new__(PackedTableau)
        t.n, t.batch, t.words = self.n, self.batch, self.words
        t.x = self.x.copy()
        t.z = self.z.copy()
        t.r = self.r.copy()
        t._make_views()
        return t

    # ------------------------------------------------------------ conversions
    @classmethod
    def from_tableau(cls, tab: StabilizerTableau, batch: int = 1) -> "PackedTableau":
        """Pack an unpacked tableau, replicated across ``batch`` lanes (lossless)."""
        if batch < 1:
            raise ValueError("need at least one shot in the batch")
        t = cls.__new__(cls)
        t.n, t.batch, t.words = tab.n, batch, -(-tab.n // 64)
        t.x = np.tile(pack_bits(tab.x), (batch, 1, 1))
        t.z = np.tile(pack_bits(tab.z), (batch, 1, 1))
        t.r = np.tile(tab.r.astype(np.uint8), (batch, 1))
        t._make_views()
        return t

    def to_tableau(self, b: int = 0) -> StabilizerTableau:
        """Unpack batch lane ``b`` into a seed-format tableau (lossless)."""
        t = StabilizerTableau.__new__(StabilizerTableau)
        t.n = self.n
        t.x = unpack_bits(self.x[b], self.n)
        t.z = unpack_bits(self.z[b], self.n)
        t.r = self.r[b].copy()
        return t

    def stabilizer_generators(self, b: int = 0, keys: list | None = None) -> list[PauliString]:
        return self.to_tableau(b).stabilizer_generators(keys)

    # --------------------------------------------------------------- plumbing
    def _check_qubit(self, a: int) -> None:
        if not 0 <= a < self.n:
            raise ValueError(f"qubit {a} outside tableau of {self.n}")

    @staticmethod
    def _byte_bit(a: int) -> tuple[int, int]:
        """(byte index within the 8*W byte row, bit within that byte) of qubit a."""
        w, sh = divmod(a, 64)
        if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
            return w * 8 + (7 - (sh >> 3)), sh & 7
        return w * 8 + (sh >> 3), sh & 7

    def _col(self, arr8: np.ndarray, a: int) -> np.ndarray:
        """The 0/1 bit of column ``a`` for every (batch, row), as uint8."""
        byte, bit = self._byte_bit(a)
        return (arr8[:, :, byte] >> bit) & _U8_ONE

    def _xor_col(self, arr8: np.ndarray, a: int, bits01: np.ndarray) -> None:
        byte, bit = self._byte_bit(a)
        arr8[:, :, byte] ^= bits01 << bit

    def _mask01(self, mask) -> np.ndarray:
        """Batch mask as a broadcastable 0/1 uint8 factor (1 = apply)."""
        if mask is None:
            return _U8_ONE
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self.batch,):
            raise ValueError(f"mask shape {m.shape} does not match batch {self.batch}")
        return m.astype(np.uint8)[:, None]

    # ----------------------------------------------------------- 1q gates
    def h(self, a: int, mask=None) -> None:
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= (x & z) & m
        t = (x ^ z) & m
        self._xor_col(self._x8, a, t)
        self._xor_col(self._z8, a, t)

    def s(self, a: int, mask=None) -> None:
        """Phase gate S ~ Z_{pi/4}: X -> Y, Y -> -X."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= (x & z) & m
        self._xor_col(self._z8, a, x & m)

    def sdg(self, a: int, mask=None) -> None:
        """S-dagger ~ Z_{-pi/4}: X -> -Y, Y -> X."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= (x & (z ^ _U8_ONE)) & m
        self._xor_col(self._z8, a, x & m)

    def pauli_x(self, a: int, mask=None) -> None:
        self._check_qubit(a)
        self.r ^= self._col(self._z8, a) & self._mask01(mask)

    def pauli_y(self, a: int, mask=None) -> None:
        self._check_qubit(a)
        m = self._mask01(mask)
        self.r ^= (self._col(self._x8, a) ^ self._col(self._z8, a)) & m

    def pauli_z(self, a: int, mask=None) -> None:
        self._check_qubit(a)
        self.r ^= self._col(self._x8, a) & self._mask01(mask)

    def sqrt_x(self, a: int, mask=None) -> None:
        """X_{pi/4} = e^{-i pi/4 X}: Z -> -Y, Y -> Z."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= ((x ^ _U8_ONE) & z) & m
        self._xor_col(self._x8, a, z & m)

    def sqrt_x_dag(self, a: int, mask=None) -> None:
        """X_{-pi/4}: Z -> Y, Y -> -Z."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= (x & z) & m
        self._xor_col(self._x8, a, z & m)

    def sqrt_y(self, a: int, mask=None) -> None:
        """Y_{pi/4} = e^{-i pi/4 Y}: X -> -Z, Z -> X."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= (x & (z ^ _U8_ONE)) & m
        t = (x ^ z) & m
        self._xor_col(self._x8, a, t)
        self._xor_col(self._z8, a, t)

    def sqrt_y_dag(self, a: int, mask=None) -> None:
        """Y_{-pi/4}: X -> Z, Z -> -X."""
        self._check_qubit(a)
        m = self._mask01(mask)
        x, z = self._col(self._x8, a), self._col(self._z8, a)
        self.r ^= ((x ^ _U8_ONE) & z) & m
        t = (x ^ z) & m
        self._xor_col(self._x8, a, t)
        self._xor_col(self._z8, a, t)

    # ----------------------------------------------------------- 2q gates
    def cnot(self, c: int, t: int, mask=None) -> None:
        self._check_qubit(c)
        self._check_qubit(t)
        if c == t:
            raise ValueError("CNOT control and target must differ")
        m = self._mask01(mask)
        xc, zc = self._col(self._x8, c), self._col(self._z8, c)
        xt, zt = self._col(self._x8, t), self._col(self._z8, t)
        self.r ^= (xc & zt & (xt ^ zc ^ _U8_ONE)) & m
        self._xor_col(self._x8, t, xc & m)
        self._xor_col(self._z8, c, zt & m)

    def cz(self, a: int, b: int, mask=None) -> None:
        """Native one-pass CZ (= H_b CNOT_ab H_b of the seed backend)."""
        self._check_qubit(a)
        self._check_qubit(b)
        if a == b:
            raise ValueError("CZ qubits must differ")
        m = self._mask01(mask)
        xa, za = self._col(self._x8, a), self._col(self._z8, a)
        xb, zb = self._col(self._x8, b), self._col(self._z8, b)
        self.r ^= (xa & xb & (za ^ zb)) & m
        self._xor_col(self._z8, a, xb & m)
        self._xor_col(self._z8, b, xa & m)

    def zz(self, a: int, b: int, mask=None) -> None:
        """Native entangler (ZZ)_{pi/4} = (S (x) S) . CZ up to global phase.

        One-pass update rule (phase terms are CZ's plus each S's applied to
        the post-CZ z columns), verified against the seed composition.
        """
        self._check_qubit(a)
        self._check_qubit(b)
        if a == b:
            raise ValueError("ZZ qubits must differ")
        m = self._mask01(mask)
        xa, za = self._col(self._x8, a), self._col(self._z8, a)
        xb, zb = self._col(self._x8, b), self._col(self._z8, b)
        self.r ^= ((xa & xb & (za ^ zb)) ^ (xa & (za ^ xb)) ^ (xb & (zb ^ xa))) & m
        t = (xa ^ xb) & m
        self._xor_col(self._z8, a, t)
        self._xor_col(self._z8, b, t)

    # --------------------------------------------------------------- rowsum
    def _rowsum_into(self, pivot: np.ndarray, rows_mask: np.ndarray) -> None:
        """R_h := R_pivot[b] * R_h for every (batch b, row h) with rows_mask set."""
        cols = np.nonzero(rows_mask.any(axis=0))[0]
        if cols.size == 0:
            return
        bidx = np.arange(self.batch)
        x1 = self.x[bidx, pivot][:, None, :]
        z1 = self.z[bidx, pivot][:, None, :]
        r1 = self.r[bidx, pivot].astype(np.int64)
        x2 = self.x[:, cols]
        z2 = self.z[:, cols]
        e0, eneg = _phase_planes(x1, z1, x2, z2)
        g = _popcount(e0).sum(axis=-1, dtype=np.int64)
        g += 2 * _popcount(eneg).sum(axis=-1, dtype=np.int64)
        total = 2 * self.r[:, cols].astype(np.int64) + 2 * r1[:, None] + g
        m = rows_mask[:, cols]
        self.r[:, cols] = np.where(m, ((total % 4) // 2).astype(np.uint8), self.r[:, cols])
        m64 = m[:, :, None].astype(np.uint64)
        self.x[:, cols] = x2 ^ (x1 * m64)
        self.z[:, cols] = z2 ^ (z1 * m64)

    def _stab_product(self, idx: np.ndarray, hits: np.ndarray):
        """Product of the selected stabilizer rows per batch lane in ``idx``.

        ``hits[j, i]`` selects stabilizer row ``n+i`` for lane ``idx[j]``.
        Returns ``(x, z, r)`` of the product — the sequential scratch-row
        recursion collapses to prefix XORs plus one bit-plane popcount pass
        because every intermediate product of stabilizer rows carries a real
        (+/-) phase, so the mod-4 floors commute with the sum.  Only rows
        selected in at least one lane enter the computation.
        """
        n = self.n
        cols = np.nonzero(hits.any(axis=0))[0]
        if cols.size == 0:
            zeros = np.zeros((idx.size, self.words), dtype=np.uint64)
            return zeros, zeros.copy(), np.zeros(idx.size, dtype=np.uint8)
        sub = hits[:, cols]
        hm = sub[:, :, None].astype(np.uint64)
        gather = np.ix_(idx, n + cols)
        x1 = self.x[gather] * hm
        z1 = self.z[gather] * hm
        r1 = self.r[gather] * sub
        cx = np.bitwise_xor.accumulate(x1, axis=1)
        cz = np.bitwise_xor.accumulate(z1, axis=1)
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        x2[:, 1:] = cx[:, :-1]
        z2[:, 1:] = cz[:, :-1]
        e0, eneg = _phase_planes(x1, z1, x2, z2)
        g = _popcount(e0).sum(axis=(1, 2), dtype=np.int64)
        g += 2 * _popcount(eneg).sum(axis=(1, 2), dtype=np.int64)
        total = 2 * r1.sum(axis=1, dtype=np.int64) + g
        return cx[:, -1], cz[:, -1], ((total % 4) // 2).astype(np.uint8)

    # ---------------------------------------------------------- measurement
    def _forced_array(self, forced) -> np.ndarray | None:
        if forced is None:
            return None
        arr = np.asarray(forced, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(self.batch, int(arr), dtype=np.int64)
        if arr.shape != (self.batch,):
            raise ValueError(f"forced shape {arr.shape} does not match batch {self.batch}")
        return arr

    def measure(
        self,
        a: int,
        rng: np.random.Generator | Sequence[np.random.Generator] | None = None,
        forced=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Measure Z on qubit ``a`` across the whole batch.

        Returns ``(outcomes, deterministic)`` arrays of shape ``(batch,)``.
        ``rng`` may be one shared generator (outcomes drawn as a vector) or a
        per-shot sequence of generators, in which case lane ``k`` consumes
        ``rng[k]`` exactly like a single-shot tableau replay would — only when
        its own outcome is random, in batch order.  ``forced`` pins outcomes
        (scalar or per-shot array); forcing a deterministic lane to the wrong
        value raises, matching the unpacked backend.
        """
        self._check_qubit(a)
        n, B = self.n, self.batch
        w, sh = divmod(a, 64)
        xa = self._col(self._x8, a) != 0  # (B, 2n) bool
        has_pivot = xa[:, n:].any(axis=1)
        deterministic = ~has_pivot
        outcomes = np.zeros(B, dtype=np.uint8)
        forced_arr = self._forced_array(forced)

        if has_pivot.any():
            sel = np.nonzero(has_pivot)[0]
            pivot = n + np.argmax(xa[:, n:], axis=1)  # first anticommuting stabilizer
            rows_mask = xa.copy()
            rows_mask[np.arange(B), pivot] = False
            rows_mask &= has_pivot[:, None]
            self._rowsum_into(pivot, rows_mask)
            if forced_arr is not None:
                outcomes[sel] = forced_arr[sel].astype(np.uint8)
            elif rng is None:
                raise ValueError("random measurement outcome requires an rng")
            elif isinstance(rng, np.random.Generator):
                outcomes[sel] = rng.integers(0, 2, size=sel.size, dtype=np.uint8)
            else:
                outcomes[sel] = [int(rng[k].integers(2)) for k in sel]
            p = pivot[sel]
            self.x[sel, p - n] = self.x[sel, p]
            self.z[sel, p - n] = self.z[sel, p]
            self.r[sel, p - n] = self.r[sel, p]
            self.x[sel, p] = 0
            self.z[sel, p] = 0
            self.z[sel, p, w] = _ONE << np.uint64(sh)
            self.r[sel, p] = outcomes[sel]

        if deterministic.any():
            det = np.nonzero(deterministic)[0]
            _, _, rs = self._stab_product(det, xa[det, :n])
            outcomes[det] = rs
            if forced_arr is not None:
                bad = np.nonzero(forced_arr[det] != rs)[0]
                if bad.size:
                    k = bad[0]
                    raise ValueError(
                        f"forced outcome {int(forced_arr[det][k])} contradicts "
                        f"deterministic outcome {int(rs[k])}"
                    )
        return outcomes, deterministic

    def reset(
        self,
        a: int,
        rng: np.random.Generator | Sequence[np.random.Generator] | None = None,
    ) -> None:
        """Prepare_Z: project qubit ``a`` to |0> in every batch lane."""
        outcomes, _ = self.measure(a, rng, forced=0 if rng is None else None)
        self.pauli_x(a, mask=outcomes.astype(bool))

    # --------------------------------------------------------- expectations
    def _pauli_words(self, pauli: PauliString, index_of: dict | None = None):
        if not pauli.is_hermitian:
            raise ValueError("expectation values need Hermitian Pauli strings")
        xp = np.zeros(self.n, dtype=np.uint8)
        zp = np.zeros(self.n, dtype=np.uint8)
        for key, p in pauli.ops.items():
            q = key if index_of is None else index_of[key]
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {key!r} -> {q} outside tableau")
            if p in ("X", "Y"):
                xp[q] = 1
            if p in ("Z", "Y"):
                zp[q] = 1
        return pack_bits(xp), pack_bits(zp), (pauli.phase % 4) // 2

    @staticmethod
    def _anticommutation(xrows, zrows, xp, zp) -> np.ndarray:
        """Symplectic-product parity of each packed row with the Pauli (x/z words)."""
        par = _popcount(xrows & zp).sum(axis=-1, dtype=np.int64)
        par += _popcount(zrows & xp).sum(axis=-1, dtype=np.int64)
        return (par & 1).astype(bool)

    def commutes(self, pauli: PauliString, index_of: dict | None = None) -> np.ndarray:
        """Per-lane bool: does ``pauli`` commute with every stabilizer generator?"""
        xp, zp, _ = self._pauli_words(pauli, index_of)
        anti = self._anticommutation(self.x[:, self.n:], self.z[:, self.n:], xp, zp)
        return ~anti.any(axis=1)

    def expectation(self, pauli: PauliString, index_of: dict | None = None) -> np.ndarray:
        """<P> per batch lane: an int array over {-1, 0, +1} (exact)."""
        xp, zp, rp = self._pauli_words(pauli, index_of)
        n = self.n
        anti_stab = self._anticommutation(self.x[:, n:], self.z[:, n:], xp, zp)
        out = np.zeros(self.batch, dtype=np.int64)
        live = np.nonzero(~anti_stab.any(axis=1))[0]
        if live.size:
            # P is in each live lane's stabilizer group; generator k participates
            # iff P anticommutes with destabilizer k.
            hits = self._anticommutation(self.x[live, :n], self.z[live, :n], xp, zp)
            px, pz, rs = self._stab_product(live, hits)
            if not (np.array_equal(px, np.broadcast_to(xp, px.shape))
                    and np.array_equal(pz, np.broadcast_to(zp, pz.shape))):
                raise AssertionError("internal error: commuting Pauli not in stabilizer group")
            out[live] = np.where(rs == rp, 1, -1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PackedTableau n={self.n} batch={self.batch} words={self.words}>"


def apply_packed(tab: PackedTableau, name: str, qubits: tuple[int, ...], mask=None) -> None:
    """Apply a native Clifford gate to (a masked subset of) the batch.

    The non-Clifford ``Z_pi/8`` rotations are rejected here, as in
    :func:`repro.sim.gates.apply_to_tableau` — the batch runner routes them
    through the quasi-Clifford sampler as masked substitute layers.
    """
    if name in TABLEAU_1Q:
        (a,) = qubits
        getattr(tab, TABLEAU_1Q[name])(a, mask=mask)
    elif name == "ZZ":
        a, b = qubits
        tab.zz(a, b, mask=mask)
    elif name in NON_CLIFFORD_GATES:
        raise ValueError(f"{name} is non-Clifford; use the quasi-Clifford sampler")
    else:
        raise ValueError(f"unknown gate {name!r}")
