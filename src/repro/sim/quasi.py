"""Quasi-probability Monte Carlo over Clifford channels (paper §4.1).

"Each non-Clifford gate is represented by a decomposition of Clifford gates,
and in each sample, only one of these Clifford gates is randomly chosen to
be simulated.  The probability that a Clifford gate is selected is
determined by the decomposition coefficients, and the weight of the sample
is adjusted based on the probability of the selected Clifford gate."

For a Z-axis rotation ``T = exp(-i theta Z)`` the channel decomposes exactly
over three Clifford channels::

    T rho T^dag = c_I rho + c_Z (Z rho Z) + c_S (S rho S^dag)

with (derived by expanding the S channel and matching commutator terms):

    c_S = sin(2 theta),
    c_I = cos^2(theta) - sin(2 theta) / 2,
    c_Z = sin^2(theta) - sin(2 theta) / 2.

For ``theta = pi/8`` this is ``(0.5, sqrt(2)/2, ~-0.207)`` — one negative
coefficient, total negativity gamma = sum |c_k| = sqrt(2), the known
quasi-probability cost of a T gate.  Negative angles use ``S^dag`` instead.
The estimator ``<P> = E[ weight * <P>_shot ]`` is unbiased; its variance is
amplified by ``gamma^2`` per T gate, hence the shot counts in §4.1.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["channel_decomposition", "QuasiCliffordSampler", "estimate_expectation"]


def channel_decomposition(theta: float) -> list[tuple[str | None, float]]:
    """Quasi-probability weights for the ``exp(-i theta Z)`` channel.

    Returns ``[(gate, coefficient), ...]`` where gate is ``None`` (identity),
    ``"Z_pi/2"`` (Pauli Z), or ``"Z_pi/4"`` / ``"Z_-pi/4"`` (S / S-dagger).
    Coefficients sum to 1 and reproduce the channel exactly.
    """
    s2 = math.sin(2 * theta)
    s_gate = "Z_pi/4" if theta >= 0 else "Z_-pi/4"
    c_i = math.cos(theta) ** 2 - abs(s2) / 2
    c_z = math.sin(theta) ** 2 - abs(s2) / 2
    c_s = abs(s2)
    return [(None, c_i), ("Z_pi/2", c_z), (s_gate, c_s)]


class QuasiCliffordSampler:
    """Per-shot sampler replacing a non-Clifford gate by one Clifford."""

    _THETAS = {"Z_pi/8": math.pi / 8, "Z_-pi/8": -math.pi / 8}

    def __init__(self) -> None:
        self._cache: dict[str, tuple[list[str | None], np.ndarray, np.ndarray, float]] = {}

    def negativity(self, name: str) -> float:
        """gamma = sum |c_k| for the gate's channel decomposition."""
        return self._table(name)[3]

    def _table(self, name: str):
        if name not in self._cache:
            theta = self._THETAS.get(name)
            if theta is None:
                raise ValueError(f"{name!r} is not a supported non-Clifford gate")
            decomp = channel_decomposition(theta)
            gates = [g for g, _ in decomp]
            coeffs = np.array([c for _, c in decomp])
            gamma = float(np.abs(coeffs).sum())
            probs = np.abs(coeffs) / gamma
            self._cache[name] = (gates, coeffs, probs, gamma)
        return self._cache[name]

    def sample(
        self, name: str, rng: np.random.Generator
    ) -> tuple[str | None, float]:
        """Pick one Clifford substitute; returns (gate_or_None, weight factor).

        weight factor = gamma * sign(c_k), so that averaging
        ``weight * estimate`` over shots is unbiased for the true channel.
        """
        gates, coeffs, probs, gamma = self._table(name)
        k = int(rng.choice(len(gates), p=probs))
        return gates[k], gamma * float(np.sign(coeffs[k]))

    def sample_batch(
        self, name: str, rng: np.random.Generator, size: int
    ) -> tuple[list[str | None], np.ndarray]:
        """Vectorized :meth:`sample` for a whole batch of shots.

        Returns ``(gates, weight_factors)`` — one substitute gate (or ``None``)
        and one ``gamma * sign(c_k)`` factor per shot, drawn from a single
        shared generator.
        """
        gates, coeffs, probs, gamma = self._table(name)
        ks = rng.choice(len(gates), size=int(size), p=probs)
        return [gates[int(k)] for k in ks], gamma * np.sign(coeffs)[ks]


def estimate_expectation(run_shot, n_shots: int) -> tuple[float, float]:
    """Monte-Carlo mean and standard error of ``weight * value`` over shots.

    ``run_shot(k)`` must return ``(value, weight)`` for shot ``k``.
    """
    if n_shots < 2:
        raise ValueError("need at least two shots for an error estimate")
    samples = np.empty(n_shots)
    for k in range(n_shots):
        value, weight = run_shot(k)
        samples[k] = weight * value
    mean = float(samples.mean())
    stderr = float(samples.std(ddof=1) / math.sqrt(n_shots))
    return mean, stderr
