"""Sharded, checkpointed sweeps with a content-addressed result cache.

A parameter sweep is a grid of independent *cells* — one (distance, noise,
shots, seed, decoder, engine) point each.  ``repro.estimator.jobs``
decomposes every sweep into such cells, executes them on a process pool,
and checkpoints each finished cell to disk under a key derived by hashing
the cell's physical parameters (canonical JSON -> SHA-256).  That buys
three things demonstrated below:

1. **Sharding** — ``jobs=N`` fans the grid out over N worker processes;
   the merged reports are bit-identical to the serial loop because every
   cell derives its per-shot randomness from the same
   ``SeedSequence(seed, spawn_key=(shot,))`` streams the serial oracle
   uses, independent of which worker (or batch chunking) runs it.
2. **Crash tolerance** — each finished cell is written atomically
   (write-then-rename) and recorded in an append-only fsync'd manifest.
   Kill the driver at any instant and rerun with the same checkpoint:
   completed cells replay from disk, only the remainder is recomputed.
3. **Memoisation** — rerunning an already-finished sweep is pure cache
   lookup (measured >>50x faster than recomputing; see BENCH_sweep.json),
   and every payload is hash-verified on read, so a corrupted result file
   is detected and transparently recomputed, never served.

The same machinery backs ``tiscc lfr --jobs 4 --checkpoint DIR --resume``.

Run:  python examples/sharded_sweep.py
"""

import tempfile
import time
from pathlib import Path

from repro.estimator.jobs import new_stats
from repro.estimator.report import format_logical_error_table
from repro.estimator.sweep import logical_error_sweep

DISTANCES = [3, 5]
RATES = [1e-3, 3e-3]
SHOTS = 2000


def main() -> None:
    checkpoint = Path(tempfile.mkdtemp(prefix="sharded_sweep_")) / "checkpoint"

    # Cold run: every cell computed, fanned out over two worker processes,
    # each result checkpointed as it completes.
    stats = new_stats()
    t0 = time.perf_counter()
    reports = logical_error_sweep(
        DISTANCES,
        rates=RATES,
        shots=SHOTS,
        seed=7,
        jobs=2,
        checkpoint=str(checkpoint),
        stats=stats,
    )
    cold = time.perf_counter() - t0
    print(
        f"cold run: {stats['executed']} cells computed on 2 workers "
        f"in {cold:.2f} s\n"
    )
    print(format_logical_error_table(reports))

    # The checkpoint directory now holds one content-addressed file per
    # cell plus the manifest that indexes them.
    results = sorted(p.name for p in (checkpoint / "results").iterdir())
    manifest_lines = (checkpoint / "manifest.jsonl").read_text().splitlines()
    print(f"\ncheckpoint layout under {checkpoint}:")
    print("  meta.json          sweep fingerprint (guards against key mixups)")
    print(f"  manifest.jsonl     {len(manifest_lines)} completed-cell records")
    print(f"  results/           {len(results)} files, e.g. {results[0]}")

    # Warm run: identical parameters, no pool needed — pure cache lookup.
    # This is also exactly what resuming after a crash looks like, except
    # a crashed run replays the finished prefix and computes the rest.
    stats = new_stats()
    t0 = time.perf_counter()
    cached = logical_error_sweep(
        DISTANCES,
        rates=RATES,
        shots=SHOTS,
        seed=7,
        checkpoint=str(checkpoint),
        stats=stats,
    )
    warm = time.perf_counter() - t0
    same = [
        (a.dx, a.physical_rate, a.failures) == (b.dx, b.physical_rate, b.failures)
        for a, b in zip(reports, cached)
    ]
    print(
        f"\nwarm run: {stats['cache_hits']} cells served from cache, "
        f"{stats['executed']} computed, in {warm:.3f} s "
        f"({cold / warm:.0f}x faster); failure counts identical: {all(same)}"
    )


if __name__ == "__main__":
    main()
