"""T-state injection with quasi-Clifford Monte-Carlo verification (§4.1).

Demonstrates the paper's motivation (4): "developing explicit workflows for
translating measurement outcomes into values of logical operators".  The
injected |T> state's logical Pauli expectations are estimated by sampling
Clifford substitutes for the single non-Clifford Z_pi/8 gate, folding every
shot's Pauli-frame corrections from the recorded measurement outcomes.

Run:  python examples/t_injection_workflow.py
"""

import numpy as np

from repro.code.logical_qubit import LogicalQubit
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.sim.interpreter import CircuitInterpreter
from repro.sim.quasi import estimate_expectation

def main() -> None:
    grid = GridManager(5, 5)
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, dx=3, dz=3)
    occ0 = grid.occupancy()
    circuit = HardwareCircuit()
    lq.inject_state(circuit, "T", rounds=1)

    print(f"compiled T injection: {len(circuit)} native instructions "
          f"({circuit.count('Z_pi/8')} non-Clifford gate)")

    shots = 2000
    for name, op in (("X_L", lq.logical_x), ("Y_L", lq.logical_y()), ("Z_L", lq.logical_z)):
        def shot(k, op=op):
            res = CircuitInterpreter(grid, seed=hash((name, k)) % 2**31).run(circuit, occ0)
            v = res.expectation(op.pauli)
            for label in op.corrections:
                v *= res.sign(label)  # §4.5 post-processing
            return v, res.weight

        mean, err = estimate_expectation(shot, shots)
        ideal = {"X_L": 1 / np.sqrt(2), "Y_L": 1 / np.sqrt(2), "Z_L": 0.0}[name]
        sigma = abs(mean - ideal) / err if err > 0 else 0.0
        print(f"  <{name}> = {mean:+.3f} ± {err:.3f}   ideal {ideal:+.3f}   ({sigma:.1f} sigma)")

    print(f"\n{shots} Monte-Carlo shots; sample variance amplified by "
          "gamma^2 = 2 per T gate (§4.1)")

if __name__ == "__main__":
    main()
