"""Batched quasi-Clifford sampling through the TISCC facade (§4.1).

The batched counterpart of ``t_injection_workflow.py``: instead of looping
one ``CircuitInterpreter`` shot at a time, ``TISCC.simulate_shots`` replays
the compiled T-injection circuit across thousands of shots in single
vectorized passes on the packed stabilizer backend.  Per-shot measurement
bitmaps, quasi-probability weights, and Pauli-frame signs come back as
arrays, so the §4.5 post-processing (folding frame corrections into logical
expectations) is a few NumPy lines.

Run:  python examples/batched_sampling.py
"""

import time

import numpy as np

from repro.core.compiler import TISCC
from repro.estimator.report import format_outcome_summary


def main() -> None:
    compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=1)
    compiled = compiler.compile([("InjectT", (0, 0))], operation="InjectT")
    print(
        f"compiled T injection: {len(compiled.circuit)} native instructions "
        f"({compiled.circuit.count('Z_pi/8')} non-Clifford gate)"
    )

    shots = 4000
    t0 = time.perf_counter()
    batch = compiler.simulate_shots(
        compiled, shots, seed=11, independent_streams=False
    )
    elapsed = time.perf_counter() - t0
    print(f"{shots} shots in {elapsed:.2f} s ({shots / elapsed:.0f} shots/s)\n")

    lq = compiler.tiles[(0, 0)].patch
    ideal = {"X_L": 1 / np.sqrt(2), "Y_L": 1 / np.sqrt(2), "Z_L": 0.0}
    for name, op in (
        ("X_L", lq.logical_x),
        ("Y_L", lq.logical_y()),
        ("Z_L", lq.logical_z),
    ):
        values = batch.expectation(op.pauli).astype(float)
        for label in op.corrections:
            values = values * batch.sign(label)  # §4.5 post-processing
        mean, err = batch.estimate(values)
        sigma = abs(mean - ideal[name]) / err if err > 0 else 0.0
        print(
            f"  <{name}> = {mean:+.3f} ± {err:.3f}   "
            f"ideal {ideal[name]:+.3f}   ({sigma:.1f} sigma)"
        )

    print(
        f"\nsample variance amplified by gamma^2 = 2 per T gate (§4.1); "
        "outcome distribution of the first syndrome labels:"
    )
    print(format_outcome_summary(batch, limit=6))


if __name__ == "__main__":
    main()
