"""Two-architecture hardware comparison via declarative profiles.

The same surface-code program is priced and memory-benchmarked on three
hardware calibrations — the paper's baseline trap, a pessimistic
slow-junction variant, and an optimistic projected device — in one sweep
each, with the profile as a first-class axis.  Profiles are plain TOML
files (see src/repro/hardware/profiles/); edit one knob and every cache
key downstream changes with it.

Run:  python examples/profile_sweep.py
"""

from repro import HardwareProfile, get_profile, logical_error_sweep, sweep_operation
from repro.estimator.report import format_logical_error_table, format_resource_table

PROFILES = ["baseline", "slow_junction", "fast_projected"]


def main() -> None:
    # --- what the calibrations disagree about ---------------------------
    print("calibration knobs:")
    for name in PROFILES:
        p = get_profile(name)
        print(
            f"  {p.name:<16} move {p.move_us:g} us, junction hop "
            f"{p.junction_hop_us:g} us, ZZ {p.gate_times['ZZ']:g} us, "
            f"readout {p.gate_times['Measure_Z']:g} us"
        )
    print()

    # --- resources: same circuits, different wall-clock and volume ------
    reports = sweep_operation("MeasureZZ", [3, 5], rounds=1, profile=PROFILES)
    print(format_resource_table(reports, title="MeasureZZ across architectures"))
    print()

    # --- logical error rates: each architecture's own near-term preset --
    lfr = logical_error_sweep(
        [3], noise_models=["near_term"], shots=2000, seed=1, profile=PROFILES
    )
    print(format_logical_error_table(lfr, title="d=3 memory, per-profile near_term noise"))
    print()

    # A custom profile is one dict away — fingerprinted so its results
    # never collide with the shipped calibrations in any cache.
    base = get_profile("baseline").to_dict()
    base["name"] = "my_trap"
    base["junction_us"] = 52.5
    custom = HardwareProfile.from_dict(base)
    (report,) = sweep_operation("MeasureZZ", [3], rounds=1, profile=custom)
    print(
        f"custom profile {custom.name} (fingerprint {custom.fingerprint[:12]}): "
        f"MeasureZZ d=3 in {report.computation_time_s * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
