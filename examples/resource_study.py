"""Resource co-design study (paper §1 motivation 1-2, §3.4).

Sweeps code distance for the core instruction set and prints the paper's
resource metrics — the workflow for sizing a trapped-ion processor for a
fault-tolerant algorithm.

Run:  python examples/resource_study.py
"""

from repro.estimator.report import format_resource_table
from repro.estimator.sweep import sweep_operation

def main() -> None:
    distances = [2, 3, 5]
    for op in ("PrepareZ", "Idle", "MeasureZZ", "BellPrepare", "Move"):
        reports = sweep_operation(op, distances, rounds=1)
        print(format_resource_table(reports, title=f"{op} vs code distance"))
        print()

    # Derived headline: time per round of error correction is dominated by
    # the four sequential 2 ms ZZ layers and grows only weakly with d.
    idle = sweep_operation("Idle", distances, rounds=1)
    print("round-time scaling (weak in d — parallel plaquettes):")
    for r in idle:
        print(f"  d={r.dx}: {r.computation_time_s*1000:.2f} ms for prep + 1 idle round")

if __name__ == "__main__":
    main()
