"""Long-range entanglement in two logical time-steps (paper §2.1).

"In one step, local tile-based operations create a chain of local Bell
states along a path of tiles connecting the targets.  In a second step, a
set of Bell measurements along the chain propagate entanglement to the
chain ends."

Run:  python examples/long_range_bell_chain.py
"""

from repro import TISCC
from repro.core.router import bell_chain
from repro.hardware.circuit import HardwareCircuit
from repro.sim.interpreter import CircuitInterpreter

def main() -> None:
    cols = 4
    compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=cols, rounds=1)
    circuit = HardwareCircuit()
    occ0 = compiler.tiles.occupancy_snapshot()

    path = [(0, c) for c in range(cols)]
    chain = bell_chain(compiler.ops, circuit, path)
    print(f"entangled tiles {chain.ends[0]} and {chain.ends[1]} across "
          f"{cols} tiles in {chain.logical_timesteps} logical time-steps")
    print(f"({len(circuit)} native instructions, "
          f"makespan {circuit.makespan/1000:.1f} ms)")

    mz_a = compiler.ops.measure(circuit, path[0], "Z")
    mz_b = compiler.ops.measure(circuit, path[-1], "Z")

    print("\nend-to-end ZZ correlations (frame-corrected):")
    for seed in range(5):
        res = CircuitInterpreter(compiler.grid, seed=seed).run(circuit, occ0)
        za, zb = mz_a.value(res), mz_b.value(res)
        expected = chain.zz_sign(res)
        ok = "ok" if za * zb == expected else "FAIL"
        print(f"  seed {seed}: Z_a={za:+d} Z_b={zb:+d}  "
              f"frame-predicted ZZ={expected:+d}   [{ok}]")
        assert za * zb == expected
    print("\nthe remote pair behaves as a Bell state with tracked frames")

if __name__ == "__main__":
    main()
