"""Threshold-like crossover of the decoded logical error rate.

The end-to-end answer to "why this code distance?": sample memory
experiments at two code distances under hardware-calibrated Pauli noise,
decode every shot with the union-find decoder, and watch the logical error
rate *fall* with distance at a sub-threshold physical rate but *rise* with
distance far above threshold.  The physical rate knob is the single-knob
``NoiseModel.uniform(p)`` (every per-operation probability equals ``p``);
because noise is injected per compiled native instruction, the effective
per-round error rate is an order of magnitude above ``p``, which puts the
crossover near p ~ 7e-4 for this gate set.

Run:  python examples/threshold_sweep.py
"""

import time

from repro.estimator.report import format_logical_error_table
from repro.estimator.sweep import logical_error_sweep

DISTANCES = [3, 5]
BELOW_THRESHOLD = 3e-4
ABOVE_THRESHOLD = 5e-3
SHOTS = 2000


def main() -> None:
    t0 = time.perf_counter()
    reports = logical_error_sweep(
        DISTANCES,
        rates=[BELOW_THRESHOLD, ABOVE_THRESHOLD],
        shots=SHOTS,
        basis="Z",
        seed=7,
    )
    elapsed = time.perf_counter() - t0
    print(
        f"Z-memory logical error rates, {SHOTS} shots per point "
        f"({elapsed:.1f} s total on the packed batch path)\n"
    )
    print(format_logical_error_table(reports))

    by_rate: dict[float, list] = {}
    for rep in reports:
        by_rate.setdefault(rep.physical_rate, []).append(rep)
    print()
    for rate, reps in sorted(by_rate.items()):
        reps.sort(key=lambda r: r.dx)
        lers = {r.dx: r.logical_error_rate for r in reps}
        trend = "falls" if lers[DISTANCES[-1]] <= lers[DISTANCES[0]] else "RISES"
        regime = "below threshold" if rate == BELOW_THRESHOLD else "above threshold"
        print(
            f"p = {rate:g} ({regime}): LER {lers[DISTANCES[0]]:.4f} -> "
            f"{lers[DISTANCES[-1]]:.4f} as d goes {DISTANCES[0]} -> "
            f"{DISTANCES[-1]}  => logical error rate {trend} with distance"
        )


if __name__ == "__main__":
    main()
