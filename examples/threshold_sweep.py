"""Distance/rate sweeps of the decoded logical error rate — on the fast path.

The end-to-end answer to "what does this code distance buy?": sample
memory experiments at several code distances under single-knob Pauli noise
(``NoiseModel.uniform(p)``: every per-operation probability equals ``p``),
decode every shot with the union-find decoder, and compare logical error
rates across distances on both sides of the rate axis.

Since the detector-error-model subsystem landed, sweeps default to the
**frame engine**: each distance's compiled circuit is folded once into a
DEM (a one-time sub-second extraction) and every (rate, shots) point is
then sampled without any tableau at all — hundreds of times faster than
the packed-tableau replay, and statistically indistinguishable from it
(cross-engine chi-square and Wilson-interval tests in
``tests/test_frame_sampler.py``).  Sampling the whole d=3/5/7 sweep below
is sub-second on the frame path — wall time is now dominated by the
union-find decoder; add ``engine="tableau"`` to feel the difference.

Because noise is injected per compiled *native* instruction (hundreds per
QEC round: every ZZ entangler, rotation, transport, and readout), the
effective per-round error burden is orders of magnitude above ``p`` —
watch the defects/shot column — so distance only pays off at very low
physical rates; far above threshold, more distance reliably means more
logical errors.

Run:  python examples/threshold_sweep.py
"""

import time

from repro.estimator.report import format_logical_error_table
from repro.estimator.sweep import logical_error_sweep

DISTANCES = [3, 5, 7]
RATES = [3e-4, 5e-3]
SHOTS = 5000


def main() -> None:
    t0 = time.perf_counter()
    reports = logical_error_sweep(
        DISTANCES,
        rates=RATES,
        shots=SHOTS,
        basis="Z",
        seed=7,
        engine="frame",
    )
    elapsed = time.perf_counter() - t0
    print(
        f"Z-memory logical error rates, {SHOTS} shots per point "
        f"({elapsed:.1f} s total on the DEM frame-sampling path)\n"
    )
    print(format_logical_error_table(reports))

    by_rate: dict[float, list] = {}
    for rep in reports:
        by_rate.setdefault(rep.physical_rate, []).append(rep)
    print()
    for rate, reps in sorted(by_rate.items()):
        reps.sort(key=lambda r: r.dx)
        lers = {r.dx: r.logical_error_rate for r in reps}
        trend = "falls" if lers[DISTANCES[-1]] <= lers[DISTANCES[0]] else "RISES"
        print(
            f"p = {rate:g}: LER {lers[DISTANCES[0]]:.4f} -> "
            f"{lers[DISTANCES[-1]]:.4f} as d goes {DISTANCES[0]} -> "
            f"{DISTANCES[-1]}  => logical error rate {trend} with distance"
        )


if __name__ == "__main__":
    main()
