"""Distance/rate sweeps of the decoded logical error rate — on the fast path.

The end-to-end answer to "what does this code distance buy?": sample
memory experiments at several code distances under single-knob Pauli noise
(``NoiseModel.uniform(p)``: every per-operation probability equals ``p``),
decode every shot with the union-find decoder, and compare logical error
rates across distances on both sides of the rate axis.

Since the detector-error-model subsystem landed, sweeps default to the
**frame engine**: each distance's compiled circuit is folded once into a
DEM (a one-time sub-second extraction) and every (rate, shots) point is
then sampled without any tableau at all — hundreds of times faster than
the packed-tableau replay, and statistically indistinguishable from it
(cross-engine chi-square and Wilson-interval tests in
``tests/test_frame_sampler.py``).  Decoding rides the same DEM: the
default ``union_find`` decoder grows clusters over the DEM-built matching
graph, whose edges carry log-likelihood weights from the mechanism rates.
The second sweep below re-decodes the same noise point with
``union_find_unweighted`` (unit weights, the PR 2 behaviour) — the
decoder column of the table shows what the weights alone buy.

Because noise is injected per compiled *native* instruction (hundreds per
QEC round: every ZZ entangler, rotation, transport, and readout), the
effective per-round error burden is orders of magnitude above ``p`` —
watch the defects/shot column — so distance only pays off at very low
physical rates; far above threshold, more distance reliably means more
logical errors.

Run:  python examples/threshold_sweep.py
"""

import time

from repro.estimator.report import format_logical_error_table
from repro.estimator.sweep import logical_error_sweep

DISTANCES = [3, 5, 7]
RATES = [3e-4, 5e-3]
SHOTS = 5000


def main() -> None:
    t0 = time.perf_counter()
    reports = logical_error_sweep(
        DISTANCES,
        rates=RATES,
        shots=SHOTS,
        basis="Z",
        seed=7,
        engine="frame",
    )
    elapsed = time.perf_counter() - t0
    print(
        f"Z-memory logical error rates, {SHOTS} shots per point "
        f"({elapsed:.1f} s total on the DEM frame-sampling path)\n"
    )
    print(format_logical_error_table(reports))

    by_rate: dict[float, list] = {}
    for rep in reports:
        by_rate.setdefault(rep.physical_rate, []).append(rep)
    print()
    for rate, reps in sorted(by_rate.items()):
        reps.sort(key=lambda r: r.dx)
        lers = {r.dx: r.logical_error_rate for r in reps}
        trend = "falls" if lers[DISTANCES[-1]] <= lers[DISTANCES[0]] else "RISES"
        print(
            f"p = {rate:g}: LER {lers[DISTANCES[0]]:.4f} -> "
            f"{lers[DISTANCES[-1]]:.4f} as d goes {DISTANCES[0]} -> "
            f"{DISTANCES[-1]}  => logical error rate {trend} with distance"
        )

    # Decoder comparison at fixed noise: weighted vs unweighted union-find
    # on the same sampled syndromes (same seed, same engine) — the decoder
    # column tells the rows apart.
    compare_rate = 1e-3
    print(
        f"\ndecoder comparison at fixed noise uniform(p={compare_rate:g}), "
        f"{SHOTS} shots per point:"
    )
    comparison = []
    for decoder in ("union_find", "union_find_unweighted"):
        comparison += logical_error_sweep(
            DISTANCES,
            rates=[compare_rate],
            shots=SHOTS,
            basis="Z",
            seed=7,
            engine="frame",
            decoder=decoder,
        )
    print(format_logical_error_table(comparison))
    by_d: dict[int, dict[str, float]] = {}
    for rep in comparison:
        by_d.setdefault(rep.dx, {})[rep.decoder] = rep.logical_error_rate
    for d, lers in sorted(by_d.items()):
        w, u = lers["union_find"], lers["union_find_unweighted"]
        if w == u:
            gain = "matches unweighted"
        elif w < u:
            gain = f"cuts LER {u / w:.1f}x" if w else "removes every logical error"
        else:
            gain = f"raises LER {w / u:.1f}x on this sample" if u else "raises LER"
        print(f"d = {d}: weighted {w:.4f} vs unweighted {u:.4f}  => weighting {gain}")


if __name__ == "__main__":
    main()
