"""The fast sampling path, step by step: circuit -> DEM -> frame samples.

Demonstrates the detector-error-model subsystem on a d=5 memory
experiment:

1. compile the memory circuit once through the TISCC stack,
2. fold it with a noise model into a :class:`DetectorErrorModel` — one
   Pauli-frame walk over the compiled instruction stream, deduplicating
   every fault into (probability, detector footprint, observable mask)
   mechanisms,
3. draw 100 000 shots of detection events with the tableau-free
   :class:`FrameSampler` (bit-packed XORs over sampled mechanisms),
4. decode them with the union-find decoder,

and cross-checks the sampled per-detector marginals against the DEM's
analytic rates.  A batch this size is far beyond what the packed-tableau
noisy path does in comparable time (~25 s for just 2000 shots at d=7; see
``benchmarks/bench_frame_sampler.py`` for the measured ratio).

Run:  python examples/fast_sampling.py
"""

import time

import numpy as np

from repro.decode import MemoryExperiment
from repro.sim.frame import FrameSampler
from repro.sim.noise import NoiseModel

DISTANCE = 5
SHOTS = 100_000
NOISE = NoiseModel.preset("near_term")


def main() -> None:
    t0 = time.perf_counter()
    experiment = MemoryExperiment(distance=DISTANCE, basis="Z")
    print(
        f"compiled {experiment!r} "
        f"({len(experiment.compiled.circuit)} native instructions, "
        f"{time.perf_counter() - t0:.2f} s)"
    )

    t0 = time.perf_counter()
    table = experiment.fault_table(NOISE)
    dem = experiment.detector_error_model(NOISE)
    print(
        f"extracted {dem!r} from {table.n_sites} fault sites "
        f"({time.perf_counter() - t0:.2f} s, one-time per noise structure)"
    )

    sampler = FrameSampler(dem)
    t0 = time.perf_counter()
    samples = sampler.sample(SHOTS, seed=0)
    t_sample = time.perf_counter() - t0
    print(
        f"sampled {SHOTS} shots in {t_sample:.2f} s "
        f"({SHOTS / t_sample:,.0f} shots/s, no tableau involved)"
    )

    t0 = time.perf_counter()
    predicted = experiment.decoder.decode_batch(samples.detectors)
    failures = int((samples.observables[:, 0] ^ predicted).sum())
    print(
        f"decoded in {time.perf_counter() - t0:.2f} s: "
        f"logical error rate {failures / SHOTS:.5f} "
        f"(raw, undecoded flip rate {samples.observables.mean():.5f})"
    )

    analytic = dem.detection_rates()
    observed = samples.detectors.mean(axis=0)
    print(
        f"analytic vs sampled detector marginals: "
        f"mean {analytic.mean():.5f} vs {observed.mean():.5f}, "
        f"max abs deviation {np.abs(analytic - observed).max():.5f}"
    )


if __name__ == "__main__":
    main()
