"""A fault-tolerant CNOT by lattice surgery (paper §2.1).

The control and target tiles sit diagonally; the ancilla tile between them
is prepared in |+>, joined to the control by a ZZ measurement and to the
target by an XX measurement, then measured out — the Horsman et al.
protocol.  The Pauli-frame corrections conditioned on the three outcomes
are applied in classical post-processing (§4.5).

Run:  python examples/lattice_surgery_cnot.py
"""

from repro import TISCC
from repro.core.router import lattice_surgery_cnot
from repro.hardware.circuit import HardwareCircuit
from repro.sim.interpreter import CircuitInterpreter

def run_once(control_state: str, seed: int) -> tuple[int, int]:
    compiler = TISCC(dx=2, dz=2, tile_rows=2, tile_cols=2, rounds=1)
    ops = compiler.ops
    circuit = HardwareCircuit()
    occ0 = compiler.tiles.occupancy_snapshot()

    control, ancilla, target = (0, 0), (0, 1), (1, 1)
    ops.prepare_z(circuit, control)
    if control_state == "1":
        ops.pauli(circuit, control, "X")
    ops.prepare_z(circuit, target)

    cnot = lattice_surgery_cnot(ops, circuit, control, target, ancilla)

    mc = ops.measure(circuit, control, "Z")
    mt = ops.measure(circuit, target, "Z")

    result = CircuitInterpreter(compiler.grid, seed=seed).run(circuit, occ0)
    z_control = mc.value(result)
    z_target = mt.value(result) * (-1 if cnot.x_on_target(result) else 1)
    return z_control, z_target

def main() -> None:
    print("CNOT(control -> target) on computational basis states")
    print("(merge outcomes are random; corrections make the result exact)\n")
    for state, expected in (("0", (1, 1)), ("1", (-1, -1))):
        for seed in range(4):
            zc, zt = run_once(state, seed)
            status = "ok" if (zc, zt) == expected else "FAIL"
            print(f"  |{state}0>  seed={seed}:  Z_C={zc:+d}  Z_T={zt:+d}   [{status}]")
            assert (zc, zt) == expected
    print("\nall outcome branches reproduce the CNOT truth table")

if __name__ == "__main__":
    main()
