"""Quickstart: compile, inspect, and simulate one surface-code operation.

Mirrors the paper's App. B usage: initialize the grid, add logical qubits,
append patch operations, check validity, and print the circuit plus the
§3.4 resource counts.

Run:  python examples/quickstart.py
"""

from repro import TISCC

def main() -> None:
    # A 1x2 grid of distance-3 logical tiles (one round per logical
    # time-step keeps this demo fast; drop rounds=None for the full dt).
    compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2, rounds=1)

    compiled = compiler.compile(
        [
            ("PrepareZ", (0, 0)),  # |0>_L on the left tile   (1 step)
            ("PrepareX", (0, 1)),  # |+>_L on the right tile  (1 step)
            ("MeasureZZ", (0, 0), (0, 1)),  # lattice-surgery joint measurement
            ("MeasureZ", (0, 0)),
            ("MeasureZ", (0, 1)),
        ],
        operation="quickstart",
    )

    print(f"compiled {len(compiled.circuit)} native instructions, "
          f"makespan {compiled.circuit.makespan/1000:.2f} ms, "
          f"{compiled.logical_timesteps} logical time-steps")
    print(f"junction conflicts resolved: {compiler.grid.junction_conflicts}")

    print("\nfirst 10 instructions of the time-resolved circuit:")
    for inst in compiled.circuit.sorted_instructions()[:10]:
        print(" ", inst.to_text())

    print("\nresources (§3.4):")
    print(compiled.resources.header())
    print(compiled.resources.row())

    # Replay on the stabilizer backend (the ORQCS substitute).
    for seed in range(3):
        res = compiler.simulate(compiled, seed=seed)
        zz = compiled.results[2].value(res)
        za = compiled.results[3].value(res)
        zb = compiled.results[4].value(res)
        print(f"\nseed {seed}: MeasureZZ outcome {zz:+d}; "
              f"final Z measurements {za:+d}, {zb:+d} "
              f"(product {'matches' if za*zb == zz else 'MISMATCH'})")

if __name__ == "__main__":
    main()
